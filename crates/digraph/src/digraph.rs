//! The [`Digraph`] type: a directed multigraph with named vertexes.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::algo;
use crate::ids::{ArcId, VertexId};

/// A directed multigraph `D = (V, A)`.
///
/// Vertexes model parties; arcs model proposed asset transfers. Parallel
/// arcs between the same ordered pair are allowed (§5 of the paper:
/// "directed multi-graphs ... reflecting the situation where Alice wants to
/// transfer assets on distinct blockchains to Bob"). Self-loops are rejected:
/// the paper defines arcs as ordered pairs of *distinct* vertexes, and a
/// transfer from a party to itself is not a swap.
///
/// # Example
///
/// ```
/// use swap_digraph::Digraph;
/// let mut d = Digraph::new();
/// let a = d.add_vertex("alice");
/// let b = d.add_vertex("bob");
/// let arc = d.add_arc(a, b).unwrap();
/// assert_eq!(d.head(arc), a);
/// assert_eq!(d.tail(arc), b);
/// assert_eq!(d.out_arcs(a).count(), 1); // the arc leaves its head
/// assert_eq!(d.in_arcs(b).count(), 1); // and enters its tail
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Digraph {
    names: Vec<String>,
    /// `arcs[i] = (head, tail)` for `ArcId(i)`.
    arcs: Vec<(VertexId, VertexId)>,
    /// Outgoing arc ids per vertex, in insertion order.
    out: Vec<Vec<ArcId>>,
    /// Incoming arc ids per vertex, in insertion order.
    into: Vec<Vec<ArcId>>,
}

/// Errors arising when constructing or mutating a [`Digraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigraphError {
    /// A vertex id referred to a vertex that does not exist.
    UnknownVertex(VertexId),
    /// An arc would connect a vertex to itself.
    SelfLoop(VertexId),
}

impl fmt::Display for DigraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DigraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            DigraphError::SelfLoop(v) => write!(f, "self-loop at {v} is not a valid transfer"),
        }
    }
}

impl std::error::Error for DigraphError {}

/// A borrowed view of one arc: its id and endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArcRef {
    /// The arc's id.
    pub id: ArcId,
    /// The arc's head: the party relinquishing the asset.
    pub head: VertexId,
    /// The arc's tail: the party acquiring the asset.
    pub tail: VertexId,
}

impl Default for Digraph {
    fn default() -> Self {
        Self::new()
    }
}

impl Digraph {
    /// Creates an empty digraph.
    pub fn new() -> Self {
        Digraph { names: Vec::new(), arcs: Vec::new(), out: Vec::new(), into: Vec::new() }
    }

    /// Adds a vertex with a human-readable name, returning its id.
    pub fn add_vertex(&mut self, name: impl Into<String>) -> VertexId {
        let id = VertexId::new(self.names.len() as u32);
        self.names.push(name.into());
        self.out.push(Vec::new());
        self.into.push(Vec::new());
        id
    }

    /// Adds `n` vertexes named `v0..v{n-1}`, returning their ids.
    pub fn add_vertices(&mut self, n: usize) -> Vec<VertexId> {
        (0..n).map(|i| self.add_vertex(format!("v{i}"))).collect()
    }

    /// Adds an arc from `head` to `tail` (a proposed transfer head → tail).
    ///
    /// # Errors
    ///
    /// Returns [`DigraphError::SelfLoop`] if `head == tail` and
    /// [`DigraphError::UnknownVertex`] if either endpoint does not exist.
    pub fn add_arc(&mut self, head: VertexId, tail: VertexId) -> Result<ArcId, DigraphError> {
        if head == tail {
            return Err(DigraphError::SelfLoop(head));
        }
        for v in [head, tail] {
            if v.index() >= self.names.len() {
                return Err(DigraphError::UnknownVertex(v));
            }
        }
        let id = ArcId::new(self.arcs.len() as u32);
        self.arcs.push((head, tail));
        self.out[head.index()].push(id);
        self.into[tail.index()].push(id);
        Ok(id)
    }

    /// Number of vertexes, `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.names.len()
    }

    /// Number of arcs, `|A|` (counting parallel arcs separately).
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Whether the digraph has no vertexes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.names.len() as u32).map(VertexId::new)
    }

    /// Iterator over all arcs.
    pub fn arcs(&self) -> impl Iterator<Item = ArcRef> + '_ {
        self.arcs.iter().enumerate().map(|(i, &(head, tail))| ArcRef {
            id: ArcId::new(i as u32),
            head,
            tail,
        })
    }

    /// The name given to `v` at insertion.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of this digraph.
    pub fn name(&self, v: VertexId) -> &str {
        &self.names[v.index()]
    }

    /// Looks up a vertex by name (linear scan; names need not be unique, the
    /// first match wins).
    pub fn vertex_by_name(&self, name: &str) -> Option<VertexId> {
        self.names.iter().position(|n| n == name).map(|i| VertexId::new(i as u32))
    }

    /// The head of `arc` — the arc *leaves* its head.
    ///
    /// # Panics
    ///
    /// Panics if `arc` is not an arc of this digraph.
    pub fn head(&self, arc: ArcId) -> VertexId {
        self.arcs[arc.index()].0
    }

    /// The tail of `arc` — the arc *enters* its tail.
    ///
    /// # Panics
    ///
    /// Panics if `arc` is not an arc of this digraph.
    pub fn tail(&self, arc: ArcId) -> VertexId {
        self.arcs[arc.index()].1
    }

    /// The `(head, tail)` pair of `arc`.
    pub fn endpoints(&self, arc: ArcId) -> (VertexId, VertexId) {
        self.arcs[arc.index()]
    }

    /// Arcs leaving `v` (arcs with head `v`), in insertion order.
    pub fn out_arcs(&self, v: VertexId) -> impl Iterator<Item = ArcRef> + '_ {
        self.out[v.index()].iter().map(move |&id| ArcRef {
            id,
            head: self.arcs[id.index()].0,
            tail: self.arcs[id.index()].1,
        })
    }

    /// Arcs entering `v` (arcs with tail `v`), in insertion order.
    pub fn in_arcs(&self, v: VertexId) -> impl Iterator<Item = ArcRef> + '_ {
        self.into[v.index()].iter().map(move |&id| ArcRef {
            id,
            head: self.arcs[id.index()].0,
            tail: self.arcs[id.index()].1,
        })
    }

    /// Out-degree of `v` (counting parallel arcs).
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out[v.index()].len()
    }

    /// In-degree of `v` (counting parallel arcs).
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.into[v.index()].len()
    }

    /// Successor vertexes of `v` (deduplicated, sorted).
    pub fn successors(&self, v: VertexId) -> Vec<VertexId> {
        let set: BTreeSet<VertexId> =
            self.out[v.index()].iter().map(|&a| self.arcs[a.index()].1).collect();
        set.into_iter().collect()
    }

    /// Predecessor vertexes of `v` (deduplicated, sorted).
    pub fn predecessors(&self, v: VertexId) -> Vec<VertexId> {
        let set: BTreeSet<VertexId> =
            self.into[v.index()].iter().map(|&a| self.arcs[a.index()].0).collect();
        set.into_iter().collect()
    }

    /// Whether at least one arc goes from `u` to `v`.
    pub fn has_arc_between(&self, u: VertexId, v: VertexId) -> bool {
        self.out[u.index()].iter().any(|&a| self.arcs[a.index()].1 == v)
    }

    /// All arc ids from `u` to `v` (several, in a multigraph).
    pub fn arcs_between(&self, u: VertexId, v: VertexId) -> Vec<ArcId> {
        self.out[u.index()].iter().copied().filter(|&a| self.arcs[a.index()].1 == v).collect()
    }

    /// The transpose `Dᵀ`: same vertexes, every arc reversed. Arc ids are
    /// preserved (arc `i` of the transpose is arc `i` reversed).
    ///
    /// The paper (§2.1) notes that if `D` is strongly connected so is `Dᵀ`,
    /// and any feedback vertex set for `D` is one for `Dᵀ`; both facts are
    /// exercised in this crate's tests.
    pub fn transpose(&self) -> Digraph {
        let mut t = Digraph::new();
        for name in &self.names {
            t.add_vertex(name.clone());
        }
        for &(head, tail) in &self.arcs {
            t.add_arc(tail, head).expect("transposed arc endpoints valid");
        }
        t
    }

    /// The subdigraph induced by deleting `removed` vertexes: remaining
    /// vertexes keep their ids (deleted ones become isolated), and every arc
    /// incident to a removed vertex disappears.
    ///
    /// This "mask, don't renumber" representation is what the feedback-vertex
    /// machinery wants: `D \ L` keeps the same vertex ids as `D`.
    pub fn delete_vertices(&self, removed: &BTreeSet<VertexId>) -> Digraph {
        let mut d = Digraph::new();
        for name in &self.names {
            d.add_vertex(name.clone());
        }
        for &(head, tail) in &self.arcs {
            if !removed.contains(&head) && !removed.contains(&tail) {
                d.add_arc(head, tail).expect("endpoints valid");
            }
        }
        d
    }

    /// Whether the digraph is strongly connected (every vertex reaches every
    /// other). The empty digraph is vacuously strongly connected; a single
    /// vertex is too.
    pub fn is_strongly_connected(&self) -> bool {
        algo::is_strongly_connected(self)
    }

    /// Whether the digraph has no cycles.
    pub fn is_acyclic(&self) -> bool {
        algo::is_acyclic(self)
    }

    /// The paper's `diam(D)`: the length of the longest path from any vertex
    /// to any other (longest-path semantics, where a path may close into a
    /// cycle but may not repeat interior vertexes).
    ///
    /// Longest path is NP-hard in general; this method computes it exactly
    /// for digraphs with at most [`algo::EXACT_DIAMETER_LIMIT`] vertexes and
    /// otherwise falls back to the safe upper bound `|V|` (no path can be
    /// longer, since at most `|V|` arcs can be traversed before repeating an
    /// interior vertex). Timelocks derived from an upper bound remain sound —
    /// they are merely looser.
    pub fn diameter(&self) -> usize {
        algo::diameter_exact(self).unwrap_or_else(|| self.diameter_upper_bound())
    }

    /// The trivially safe diameter upper bound `|V|`.
    pub fn diameter_upper_bound(&self) -> usize {
        self.vertex_count()
    }

    /// Renders the digraph as `name(head) -> name(tail)` lines, stable across
    /// runs; useful in test failure output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for arc in self.arcs() {
            out.push_str(&format!(
                "{} -> {} [{}]\n",
                self.name(arc.head),
                self.name(arc.tail),
                arc.id
            ));
        }
        out
    }
}

/// Incremental builder with a fluent interface for tests and generators.
///
/// # Example
///
/// ```
/// use swap_digraph::DigraphBuilder;
/// let d = DigraphBuilder::new()
///     .vertices(["a", "b", "c"])
///     .arc("a", "b")
///     .arc("b", "c")
///     .arc("c", "a")
///     .build();
/// assert!(d.is_strongly_connected());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DigraphBuilder {
    digraph: Digraph,
}

impl DigraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds named vertexes.
    pub fn vertices<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            self.digraph.add_vertex(n);
        }
        self
    }

    /// Adds an arc between two previously added vertex *names*.
    ///
    /// # Panics
    ///
    /// Panics if either name is unknown or the arc would be a self-loop —
    /// builders are for literals in tests, where failing fast is a feature.
    pub fn arc(mut self, head: &str, tail: &str) -> Self {
        let h =
            self.digraph.vertex_by_name(head).unwrap_or_else(|| panic!("unknown vertex {head}"));
        let t =
            self.digraph.vertex_by_name(tail).unwrap_or_else(|| panic!("unknown vertex {tail}"));
        self.digraph.add_arc(h, t).expect("builder arcs must be valid");
        self
    }

    /// Finishes building.
    pub fn build(self) -> Digraph {
        self.digraph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Digraph {
        DigraphBuilder::new()
            .vertices(["a", "b", "c"])
            .arc("a", "b")
            .arc("b", "c")
            .arc("c", "a")
            .build()
    }

    #[test]
    fn arc_leaves_head_enters_tail() {
        let d = triangle();
        let a = d.vertex_by_name("a").unwrap();
        let b = d.vertex_by_name("b").unwrap();
        let arc = d.out_arcs(a).next().unwrap();
        assert_eq!(arc.head, a);
        assert_eq!(arc.tail, b);
        assert_eq!(d.in_arcs(b).next().unwrap().id, arc.id);
        assert_eq!(d.endpoints(arc.id), (a, b));
    }

    #[test]
    fn self_loop_rejected() {
        let mut d = Digraph::new();
        let v = d.add_vertex("x");
        assert_eq!(d.add_arc(v, v), Err(DigraphError::SelfLoop(v)));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut d = Digraph::new();
        let v = d.add_vertex("x");
        let ghost = VertexId::new(9);
        assert_eq!(d.add_arc(v, ghost), Err(DigraphError::UnknownVertex(ghost)));
        assert_eq!(d.add_arc(ghost, v), Err(DigraphError::UnknownVertex(ghost)));
        let err = DigraphError::UnknownVertex(ghost);
        assert!(err.to_string().contains("v9"));
    }

    #[test]
    fn degrees_count_parallel_arcs() {
        let mut d = Digraph::new();
        let u = d.add_vertex("u");
        let v = d.add_vertex("v");
        d.add_arc(u, v).unwrap();
        d.add_arc(u, v).unwrap();
        d.add_arc(v, u).unwrap();
        assert_eq!(d.out_degree(u), 2);
        assert_eq!(d.in_degree(v), 2);
        assert_eq!(d.arcs_between(u, v).len(), 2);
        assert_eq!(d.arcs_between(v, u).len(), 1);
        assert!(d.has_arc_between(u, v));
        assert_eq!(d.successors(u), vec![v]);
        assert_eq!(d.predecessors(u), vec![v]);
    }

    #[test]
    fn transpose_reverses_arcs_preserving_ids() {
        let d = triangle();
        let t = d.transpose();
        assert_eq!(t.vertex_count(), 3);
        assert_eq!(t.arc_count(), 3);
        for arc in d.arcs() {
            assert_eq!(t.head(arc.id), arc.tail);
            assert_eq!(t.tail(arc.id), arc.head);
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let d = triangle();
        assert_eq!(d.transpose().transpose(), d);
    }

    #[test]
    fn delete_vertices_masks_incident_arcs() {
        let d = triangle();
        let a = d.vertex_by_name("a").unwrap();
        let removed: BTreeSet<_> = [a].into_iter().collect();
        let rest = d.delete_vertices(&removed);
        // Vertex ids preserved, but only the b->c arc survives.
        assert_eq!(rest.vertex_count(), 3);
        assert_eq!(rest.arc_count(), 1);
        let survivor = rest.arcs().next().unwrap();
        assert_eq!(rest.name(survivor.head), "b");
        assert_eq!(rest.name(survivor.tail), "c");
    }

    #[test]
    fn triangle_is_strongly_connected_and_cyclic() {
        let d = triangle();
        assert!(d.is_strongly_connected());
        assert!(!d.is_acyclic());
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Digraph::new();
        assert!(empty.is_empty());
        assert!(empty.is_strongly_connected());
        assert!(empty.is_acyclic());
        assert_eq!(empty.diameter(), 0);

        let mut single = Digraph::new();
        single.add_vertex("only");
        assert!(single.is_strongly_connected());
        assert!(single.is_acyclic());
        assert_eq!(single.diameter(), 0);
    }

    #[test]
    fn names_and_lookup() {
        let d = triangle();
        let b = d.vertex_by_name("b").unwrap();
        assert_eq!(d.name(b), "b");
        assert!(d.vertex_by_name("zelda").is_none());
    }

    #[test]
    fn builder_vertices_helper() {
        let mut d = Digraph::new();
        let ids = d.add_vertices(4);
        assert_eq!(ids.len(), 4);
        assert_eq!(d.name(ids[2]), "v2");
    }

    #[test]
    fn render_is_stable() {
        let d = triangle();
        let r = d.render();
        assert!(r.contains("a -> b"));
        assert!(r.contains("c -> a"));
    }

    #[test]
    #[should_panic(expected = "unknown vertex")]
    fn builder_panics_on_unknown_name() {
        let _ = DigraphBuilder::new().vertices(["a"]).arc("a", "zzz").build();
    }
}
