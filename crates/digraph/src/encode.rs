//! Canonical binary encoding of digraphs.
//!
//! Every swap contract stores a copy of the swap digraph (Figure 4, line 3),
//! which is what drives the paper's `O(|A|²)` space bound (Theorem 4.10: |A|
//! contracts × O(|A|) bits each). The chain substrate meters stored bytes,
//! so the encoding must be canonical and deterministic.
//!
//! Layout (all integers big-endian `u32`):
//!
//! ```text
//! magic "SWDG" | vertex_count | arc_count | (head, tail)*arc_count
//! ```
//!
//! Vertex names are *not* encoded: contracts identify parties by their
//! on-chain addresses, not display names.

use std::fmt;

use crate::digraph::Digraph;
use crate::ids::VertexId;

const MAGIC: &[u8; 4] = b"SWDG";

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer did not start with the expected magic bytes.
    BadMagic,
    /// The buffer ended before the declared structure was complete.
    Truncated,
    /// An arc referenced a vertex outside the declared vertex count, or was
    /// a self-loop.
    InvalidArc {
        /// Index of the offending arc.
        index: usize,
    },
    /// Trailing bytes followed the declared structure.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "missing SWDG magic prefix"),
            DecodeError::Truncated => write!(f, "buffer ended before structure was complete"),
            DecodeError::InvalidArc { index } => write!(f, "arc {index} is invalid"),
            DecodeError::TrailingBytes => write!(f, "unexpected trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes `d` into the canonical byte layout.
///
/// The size is `12 + 8·|A|` bytes: linear in `|A|`, as Theorem 4.10 assumes.
pub fn encode(d: &Digraph) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + 8 * d.arc_count());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(d.vertex_count() as u32).to_be_bytes());
    out.extend_from_slice(&(d.arc_count() as u32).to_be_bytes());
    for arc in d.arcs() {
        out.extend_from_slice(&arc.head.raw().to_be_bytes());
        out.extend_from_slice(&arc.tail.raw().to_be_bytes());
    }
    out
}

/// The encoded size in bytes without materializing the encoding.
pub fn encoded_len(d: &Digraph) -> usize {
    12 + 8 * d.arc_count()
}

/// Decodes a digraph previously produced by [`encode`]. Vertex names are
/// synthesized as `v0..v{n-1}`.
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first structural problem found.
pub fn decode(bytes: &[u8]) -> Result<Digraph, DecodeError> {
    let read_u32 = |at: usize| -> Result<u32, DecodeError> {
        let slice = bytes.get(at..at + 4).ok_or(DecodeError::Truncated)?;
        Ok(u32::from_be_bytes(slice.try_into().expect("4-byte slice")))
    };
    if bytes.get(..4) != Some(MAGIC.as_slice()) {
        return Err(DecodeError::BadMagic);
    }
    let n = read_u32(4)? as usize;
    let m = read_u32(8)? as usize;
    let expected = 12 + 8 * m;
    if bytes.len() < expected {
        return Err(DecodeError::Truncated);
    }
    if bytes.len() > expected {
        return Err(DecodeError::TrailingBytes);
    }
    let mut d = Digraph::new();
    d.add_vertices(n);
    for i in 0..m {
        let head = read_u32(12 + 8 * i)?;
        let tail = read_u32(16 + 8 * i)?;
        if head as usize >= n || tail as usize >= n || head == tail {
            return Err(DecodeError::InvalidArc { index: i });
        }
        d.add_arc(VertexId::new(head), VertexId::new(tail))
            .map_err(|_| DecodeError::InvalidArc { index: i })?;
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_three_party() {
        let d = generators::herlihy_three_party();
        let bytes = encode(&d);
        assert_eq!(bytes.len(), encoded_len(&d));
        let back = decode(&bytes).unwrap();
        assert_eq!(back.vertex_count(), 3);
        assert_eq!(back.arc_count(), 3);
        for (orig, dec) in d.arcs().zip(back.arcs()) {
            assert_eq!(orig.head, dec.head);
            assert_eq!(orig.tail, dec.tail);
        }
    }

    #[test]
    fn roundtrip_multigraph() {
        let d = generators::multigraph_pair();
        let back = decode(&encode(&d)).unwrap();
        assert_eq!(back.arc_count(), 3);
        let a = VertexId::new(0);
        let b = VertexId::new(1);
        assert_eq!(back.arcs_between(a, b).len(), 2);
    }

    #[test]
    fn size_is_linear_in_arcs() {
        // This linearity is the per-contract half of Theorem 4.10.
        for n in [2usize, 4, 8] {
            let d = generators::complete(n);
            assert_eq!(encoded_len(&d), 12 + 8 * n * (n - 1));
            assert_eq!(encode(&d).len(), encoded_len(&d));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE"), Err(DecodeError::BadMagic));
        assert_eq!(decode(b""), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let d = generators::herlihy_three_party();
        let bytes = encode(&d);
        assert_eq!(decode(&bytes[..bytes.len() - 1]), Err(DecodeError::Truncated));
        assert_eq!(decode(&bytes[..10]), Err(DecodeError::Truncated));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let d = generators::herlihy_three_party();
        let mut bytes = encode(&d);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn invalid_arc_rejected() {
        // Hand-craft: 2 vertexes, 1 arc referencing vertex 5.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SWDG");
        bytes.extend_from_slice(&2u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&5u32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        assert_eq!(decode(&bytes), Err(DecodeError::InvalidArc { index: 0 }));
    }

    #[test]
    fn self_loop_in_encoding_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SWDG");
        bytes.extend_from_slice(&2u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        assert_eq!(decode(&bytes), Err(DecodeError::InvalidArc { index: 0 }));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
        assert!(DecodeError::InvalidArc { index: 3 }.to_string().contains("3"));
    }
}
