//! Feedback vertex sets — the *leader* sets of the swap protocol.
//!
//! Theorem 4.12 of the paper shows that in any uniform hashed-timelock swap
//! protocol the leaders must form a feedback vertex set of the swap digraph.
//! Finding a *minimum* directed feedback vertex set is NP-complete (Karp
//! 1972, cited as \[15\]); the paper notes an efficient 2-approximation exists
//! for the undirected variant. This module provides:
//!
//! * [`FeedbackVertexSet::is_feedback_vertex_set`] — the defining check,
//! * [`FeedbackVertexSet::minimum`] — exact branch-and-bound for graphs of
//!   practical swap size (cycle-branching FPT search),
//! * [`FeedbackVertexSet::greedy`] — a fast heuristic (repeatedly delete the
//!   vertex with maximum in·out degree product among cycle participants,
//!   then minimalize), whose quality the bench harness compares against the
//!   exact optimum.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::algo::strongly_connected_components;
use crate::digraph::Digraph;
use crate::ids::VertexId;

/// A verified feedback vertex set for a particular digraph shape.
///
/// Construction always verifies the defining property, so holding a
/// `FeedbackVertexSet` is proof that deleting its vertexes leaves the
/// digraph acyclic.
///
/// # Example
///
/// ```
/// use swap_digraph::{generators, FeedbackVertexSet};
/// let d = generators::two_leader_triangle();
/// let exact = FeedbackVertexSet::minimum(&d).unwrap();
/// assert_eq!(exact.vertices().len(), 2); // this digraph needs two leaders
/// let greedy = FeedbackVertexSet::greedy(&d);
/// assert!(greedy.vertices().len() >= exact.vertices().len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedbackVertexSet {
    vertices: BTreeSet<VertexId>,
}

/// Error when a claimed leader set is not a feedback vertex set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotFeedbackError {
    /// A cycle that survives deletion of the claimed set (as a vertex list).
    pub witness_cycle: Vec<VertexId>,
}

impl std::fmt::Display for NotFeedbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "set is not a feedback vertex set; surviving cycle: {:?}", self.witness_cycle)
    }
}

impl std::error::Error for NotFeedbackError {}

impl FeedbackVertexSet {
    /// Wraps a candidate set after verifying it is a feedback vertex set of
    /// `d`.
    ///
    /// # Errors
    ///
    /// Returns [`NotFeedbackError`] with a witness cycle if deletion of the
    /// set leaves a cycle.
    pub fn verify(d: &Digraph, vertices: BTreeSet<VertexId>) -> Result<Self, NotFeedbackError> {
        let rest = d.delete_vertices(&vertices);
        match find_cycle(&rest) {
            None => Ok(FeedbackVertexSet { vertices }),
            Some(cycle) => Err(NotFeedbackError { witness_cycle: cycle }),
        }
    }

    /// The defining check, without constructing the witness type.
    pub fn is_feedback_vertex_set(d: &Digraph, vertices: &BTreeSet<VertexId>) -> bool {
        d.delete_vertices(vertices).is_acyclic()
    }

    /// Exact minimum feedback vertex set by cycle-branching search.
    ///
    /// Finds a shortest surviving cycle, branches on which of its vertexes
    /// joins the set, and prunes with the current best. Practical up to a
    /// few dozen vertexes (swap digraphs are small — every vertex is a
    /// distinct real-world party); returns `None` if the search exceeds an
    /// internal node budget.
    pub fn minimum(d: &Digraph) -> Option<Self> {
        let mut best: Option<BTreeSet<VertexId>> = None;
        let mut budget: u64 = 2_000_000;
        branch(d, &mut BTreeSet::new(), &mut best, &mut budget);
        if budget == 0 {
            return None;
        }
        best.map(|vertices| FeedbackVertexSet { vertices })
    }

    /// Greedy heuristic: repeatedly delete the vertex with the largest
    /// in-degree × out-degree product among vertexes on cycles, then
    /// *minimalize* by re-admitting any vertex whose removal from the set
    /// keeps acyclicity.
    ///
    /// Always returns a valid (not necessarily minimum) feedback vertex set.
    pub fn greedy(d: &Digraph) -> Self {
        let mut removed: BTreeSet<VertexId> = BTreeSet::new();
        loop {
            let rest = d.delete_vertices(&removed);
            if rest.is_acyclic() {
                break;
            }
            // Only vertexes inside nontrivial SCCs can lie on cycles.
            let candidate = strongly_connected_components(&rest)
                .into_iter()
                .filter(|c| {
                    c.len() > 1 || {
                        let v = c[0];
                        !rest.arcs_between(v, v).is_empty() // impossible (no self-loops) but explicit
                    }
                })
                .flatten()
                .max_by_key(|&v| (rest.in_degree(v) * rest.out_degree(v), std::cmp::Reverse(v)));
            match candidate {
                Some(v) => {
                    removed.insert(v);
                }
                None => break, // acyclic after all
            }
        }
        // Minimalize: drop redundant members (smallest ids first for
        // determinism).
        let members: Vec<VertexId> = removed.iter().copied().collect();
        for v in members {
            let mut trial = removed.clone();
            trial.remove(&v);
            if Self::is_feedback_vertex_set(d, &trial) {
                removed = trial;
            }
        }
        FeedbackVertexSet { vertices: removed }
    }

    /// The vertexes of the set, sorted.
    pub fn vertices(&self) -> &BTreeSet<VertexId> {
        &self.vertices
    }

    /// Whether `v` is in the set.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// Consumes the witness, returning the raw set.
    pub fn into_vertices(self) -> BTreeSet<VertexId> {
        self.vertices
    }
}

/// Finds any cycle in `d`, returned as the vertex sequence of the cycle
/// (first vertex repeated implicitly), or `None` if acyclic.
pub fn find_cycle(d: &Digraph) -> Option<Vec<VertexId>> {
    let n = d.vertex_count();
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, Vec<VertexId>)> =
            vec![(root, d.successors(VertexId::new(root as u32)))];
        color[root] = 1;
        while let Some((v, succs)) = stack.last_mut() {
            if let Some(w) = succs.pop() {
                match color[w.index()] {
                    0 => {
                        color[w.index()] = 1;
                        parent[w.index()] = Some(VertexId::new(*v as u32));
                        stack.push((w.index(), d.successors(w)));
                    }
                    1 => {
                        // Found a back arc v -> w: reconstruct cycle w ... v.
                        let mut cycle = vec![VertexId::new(*v as u32)];
                        let mut cur = VertexId::new(*v as u32);
                        while cur != w {
                            cur = parent[cur.index()].expect("on-stack vertex has parent");
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[*v] = 2;
                stack.pop();
            }
        }
    }
    None
}

fn branch(
    d: &Digraph,
    chosen: &mut BTreeSet<VertexId>,
    best: &mut Option<BTreeSet<VertexId>>,
    budget: &mut u64,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    if let Some(b) = best {
        if chosen.len() >= b.len() {
            return; // cannot improve
        }
    }
    let rest = d.delete_vertices(chosen);
    let Some(cycle) = find_shortest_cycle(&rest) else {
        // Acyclic: chosen is a feedback vertex set.
        *best = Some(chosen.clone());
        return;
    };
    for v in cycle {
        chosen.insert(v);
        branch(d, chosen, best, budget);
        chosen.remove(&v);
    }
}

/// Shortest cycle via BFS from each vertex back to itself (on the
/// deduplicated successor relation).
fn find_shortest_cycle(d: &Digraph) -> Option<Vec<VertexId>> {
    let n = d.vertex_count();
    let mut best: Option<Vec<VertexId>> = None;
    for s in 0..n {
        let sv = VertexId::new(s as u32);
        // BFS from successors of s back to s.
        let mut prev: Vec<Option<VertexId>> = vec![None; n];
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[s] = 0;
        queue.push_back(sv);
        'bfs: while let Some(v) = queue.pop_front() {
            for w in d.successors(v) {
                if w == sv && v != sv {
                    // Cycle s -> ... -> v -> s.
                    let mut cycle = vec![v];
                    let mut cur = v;
                    while cur != sv {
                        cur = prev[cur.index()].expect("bfs predecessor");
                        cycle.push(cur);
                    }
                    cycle.reverse();
                    if best.as_ref().map_or(true, |b| cycle.len() < b.len()) {
                        best = Some(cycle);
                    }
                    break 'bfs;
                }
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    prev[w.index()] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        if best.as_ref().is_some_and(|b| b.len() == 2) {
            break; // cannot beat a 2-cycle
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;
    use crate::generators;

    #[test]
    fn triangle_needs_one_leader() {
        let d = generators::herlihy_three_party();
        let fvs = FeedbackVertexSet::minimum(&d).unwrap();
        assert_eq!(fvs.vertices().len(), 1);
        let v = *fvs.vertices().iter().next().unwrap();
        assert!(fvs.contains(v));
    }

    #[test]
    fn two_leader_triangle_needs_two() {
        let d = generators::two_leader_triangle();
        let fvs = FeedbackVertexSet::minimum(&d).unwrap();
        assert_eq!(fvs.vertices().len(), 2);
    }

    #[test]
    fn acyclic_digraph_needs_no_leaders() {
        let dag =
            DigraphBuilder::new().vertices(["a", "b", "c"]).arc("a", "b").arc("b", "c").build();
        let fvs = FeedbackVertexSet::minimum(&dag).unwrap();
        assert!(fvs.vertices().is_empty());
        assert!(FeedbackVertexSet::greedy(&dag).vertices().is_empty());
    }

    #[test]
    fn verify_accepts_valid_and_rejects_invalid() {
        let d = generators::two_leader_triangle();
        let a = d.vertex_by_name("alice").unwrap();
        let b = d.vertex_by_name("bob").unwrap();
        let good: BTreeSet<_> = [a, b].into_iter().collect();
        assert!(FeedbackVertexSet::verify(&d, good).is_ok());
        let bad: BTreeSet<_> = [a].into_iter().collect();
        let err = FeedbackVertexSet::verify(&d, bad).unwrap_err();
        assert!(!err.witness_cycle.is_empty());
        assert!(err.to_string().contains("not a feedback vertex set"));
    }

    #[test]
    fn witness_cycle_is_a_real_cycle() {
        let d = generators::two_leader_triangle();
        let a = d.vertex_by_name("alice").unwrap();
        let bad: BTreeSet<_> = [a].into_iter().collect();
        let err = FeedbackVertexSet::verify(&d, bad).unwrap_err();
        let cycle = &err.witness_cycle;
        // Every consecutive pair (and the wrap-around) must be an arc of the
        // digraph with alice deleted.
        let rest = d.delete_vertices(&[a].into_iter().collect());
        for i in 0..cycle.len() {
            let u = cycle[i];
            let v = cycle[(i + 1) % cycle.len()];
            assert!(rest.has_arc_between(u, v), "cycle edge {u}->{v} missing");
        }
    }

    #[test]
    fn greedy_is_always_valid() {
        for n in 2..8 {
            let d = generators::complete(n);
            let fvs = FeedbackVertexSet::greedy(&d);
            assert!(FeedbackVertexSet::is_feedback_vertex_set(&d, fvs.vertices()));
        }
    }

    #[test]
    fn complete_digraph_minimum_is_n_minus_1() {
        // K_n (all ordered pairs): any two remaining vertexes form a
        // 2-cycle, so the minimum FVS has n-1 vertexes.
        for n in 2..6 {
            let d = generators::complete(n);
            let fvs = FeedbackVertexSet::minimum(&d).unwrap();
            assert_eq!(fvs.vertices().len(), n - 1, "K_{n}");
        }
    }

    #[test]
    fn cycle_minimum_is_one() {
        for n in 2..9 {
            let d = generators::cycle(n);
            assert_eq!(FeedbackVertexSet::minimum(&d).unwrap().vertices().len(), 1);
        }
    }

    #[test]
    fn fvs_for_d_is_fvs_for_transpose() {
        // §2.1: any feedback vertex set for D is also one for Dᵀ.
        let d = generators::two_leader_triangle();
        let fvs = FeedbackVertexSet::minimum(&d).unwrap();
        let t = d.transpose();
        assert!(FeedbackVertexSet::is_feedback_vertex_set(&t, fvs.vertices()));
    }

    #[test]
    fn find_cycle_none_on_dag() {
        let dag = DigraphBuilder::new().vertices(["a", "b"]).arc("a", "b").build();
        assert!(find_cycle(&dag).is_none());
    }

    #[test]
    fn find_cycle_on_triangle() {
        let d = generators::herlihy_three_party();
        let cycle = find_cycle(&d).unwrap();
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn shortest_cycle_prefers_two_cycle() {
        // A 2-cycle nested beside a 5-cycle.
        let mut d = generators::cycle(5);
        let v0 = VertexId::new(0);
        let v1 = VertexId::new(1);
        d.add_arc(v1, v0).unwrap();
        let cycle = find_shortest_cycle(&d).unwrap();
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn into_vertices_roundtrip() {
        let d = generators::cycle(4);
        let fvs = FeedbackVertexSet::minimum(&d).unwrap();
        let raw = fvs.clone().into_vertices();
        assert_eq!(&raw, fvs.vertices());
    }

    #[test]
    fn greedy_on_random_strongly_connected() {
        use swap_sim::SimRng;
        let mut rng = SimRng::from_seed(12345);
        for n in [4usize, 6, 8, 10] {
            let d = generators::random_strongly_connected(n, 0.3, &mut rng);
            let greedy = FeedbackVertexSet::greedy(&d);
            assert!(FeedbackVertexSet::is_feedback_vertex_set(&d, greedy.vertices()));
            if let Some(exact) = FeedbackVertexSet::minimum(&d) {
                assert!(greedy.vertices().len() >= exact.vertices().len());
            }
        }
    }
}
