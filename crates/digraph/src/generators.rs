//! Digraph generators: the paper's worked examples plus parameterized
//! families used by the experiment harness.

use rand::Rng;

use crate::digraph::Digraph;
use crate::ids::VertexId;

/// The §1 motivating example: Alice pays Bob alt-coins, Bob pays Carol
/// bitcoins, Carol signs her Cadillac title over to Alice — a directed
/// 3-cycle.
///
/// Vertex names are `alice`, `bob`, `carol`; arcs are
/// `alice→bob`, `bob→carol`, `carol→alice`.
pub fn herlihy_three_party() -> Digraph {
    let mut d = Digraph::new();
    let a = d.add_vertex("alice");
    let b = d.add_vertex("bob");
    let c = d.add_vertex("carol");
    d.add_arc(a, b).expect("valid");
    d.add_arc(b, c).expect("valid");
    d.add_arc(c, a).expect("valid");
    d
}

/// The two-leader digraph of Figures 6–8: three parties with *all six* arcs.
/// Its minimum feedback vertex set has size two (deleting any single vertex
/// leaves a 2-cycle), so two leaders are required and simple per-arc
/// timeouts cannot work (Figure 6, right side).
pub fn two_leader_triangle() -> Digraph {
    let mut d = Digraph::new();
    let a = d.add_vertex("alice");
    let b = d.add_vertex("bob");
    let c = d.add_vertex("carol");
    for (u, v) in [(a, b), (b, a), (b, c), (c, b), (c, a), (a, c)] {
        d.add_arc(u, v).expect("valid");
    }
    d
}

/// The directed cycle `C_n`: vertex `i` pays vertex `(i+1) mod n`.
/// Strongly connected; minimum feedback vertex set size 1; `diam = n`.
///
/// # Panics
///
/// Panics if `n < 2` (a cycle needs at least two parties).
pub fn cycle(n: usize) -> Digraph {
    assert!(n >= 2, "cycle needs at least 2 vertexes");
    let mut d = Digraph::new();
    let vs = d.add_vertices(n);
    for i in 0..n {
        d.add_arc(vs[i], vs[(i + 1) % n]).expect("valid");
    }
    d
}

/// The complete digraph `K̂_n`: every ordered pair of distinct vertexes is an
/// arc. Strongly connected; minimum feedback vertex set size `n-1`;
/// `diam = n` (a Hamiltonian cycle).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Digraph {
    assert!(n >= 2, "complete digraph needs at least 2 vertexes");
    let mut d = Digraph::new();
    let vs = d.add_vertices(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                d.add_arc(vs[i], vs[j]).expect("valid");
            }
        }
    }
    d
}

/// The directed path `P_n` (v0 → v1 → … → v_{n-1}); *not* strongly
/// connected, used to exercise the Theorem 3.5 impossibility direction.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn path(n: usize) -> Digraph {
    assert!(n >= 2, "path needs at least 2 vertexes");
    let mut d = Digraph::new();
    let vs = d.add_vertices(n);
    for i in 0..n - 1 {
        d.add_arc(vs[i], vs[i + 1]).expect("valid");
    }
    d
}

/// A hub-and-spoke swap: a central `hub` trades bidirectionally with each of
/// `n` spokes (hub→spoke and spoke→hub arcs). Strongly connected; minimum
/// feedback vertex set is `{hub}`; `diam = 2` for `n ≥ 2`.
///
/// Models a market maker clearing many two-party swaps at once.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Digraph {
    assert!(n >= 1, "star needs at least one spoke");
    let mut d = Digraph::new();
    let hub = d.add_vertex("hub");
    for i in 0..n {
        let s = d.add_vertex(format!("spoke{i}"));
        d.add_arc(hub, s).expect("valid");
        d.add_arc(s, hub).expect("valid");
    }
    d
}

/// `k` directed cycles of length `len` sharing one common vertex — the
/// "flower" digraph. Minimum feedback vertex set is the shared vertex;
/// `diam` grows with `len`. Models one broker bridging several otherwise
/// disjoint swap rings.
///
/// # Panics
///
/// Panics if `k == 0` or `len < 2`.
pub fn flower(k: usize, len: usize) -> Digraph {
    assert!(k >= 1 && len >= 2, "flower needs k >= 1 petals of len >= 2");
    let mut d = Digraph::new();
    let center = d.add_vertex("center");
    for p in 0..k {
        let mut prev = center;
        for i in 1..len {
            let v = d.add_vertex(format!("p{p}_{i}"));
            d.add_arc(prev, v).expect("valid");
            prev = v;
        }
        d.add_arc(prev, center).expect("valid");
    }
    d
}

/// A random strongly connected digraph: a random Hamiltonian cycle (which
/// guarantees strong connectivity) plus each other ordered pair
/// independently with probability `extra_arc_prob`.
///
/// # Panics
///
/// Panics if `n < 2` or `extra_arc_prob` is not within `[0, 1]`.
pub fn random_strongly_connected<R: Rng>(n: usize, extra_arc_prob: f64, rng: &mut R) -> Digraph {
    assert!(n >= 2, "need at least 2 vertexes");
    assert!((0.0..=1.0).contains(&extra_arc_prob), "probability out of range");
    let mut d = Digraph::new();
    let vs = d.add_vertices(n);
    // Random Hamiltonian cycle.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut on_cycle = vec![vec![false; n]; n];
    for i in 0..n {
        let u = perm[i];
        let v = perm[(i + 1) % n];
        d.add_arc(vs[u], vs[v]).expect("valid");
        on_cycle[u][v] = true;
    }
    for u in 0..n {
        for v in 0..n {
            if u != v && !on_cycle[u][v] && rng.gen_bool(extra_arc_prob) {
                d.add_arc(vs[u], vs[v]).expect("valid");
            }
        }
    }
    d
}

/// An Erdős–Rényi random digraph: each ordered pair independently with
/// probability `p`. May or may not be strongly connected — used when the
/// experiment needs both kinds.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn random_digraph<R: Rng>(n: usize, p: f64, rng: &mut R) -> Digraph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut d = Digraph::new();
    let vs = d.add_vertices(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                d.add_arc(vs[u], vs[v]).expect("valid");
            }
        }
    }
    d
}

/// The minimal non-strongly-connected swap: `x` pays `y` and gets nothing
/// back. Lemma 3.4's coalition construction applies with `X = {x}`,
/// `Y = {y}`.
pub fn one_way_pair() -> Digraph {
    let mut d = Digraph::new();
    let x = d.add_vertex("x");
    let y = d.add_vertex("y");
    d.add_arc(x, y).expect("valid");
    d
}

/// Two strongly connected 3-cycles joined by a single one-way bridge —
/// connected, cyclic, but *not* strongly connected. Exercises Lemma 3.4 on a
/// digraph where both sides internally look healthy.
pub fn bridged_cycles() -> Digraph {
    let mut d = Digraph::new();
    let xs: Vec<VertexId> = (0..3).map(|i| d.add_vertex(format!("x{i}"))).collect();
    let ys: Vec<VertexId> = (0..3).map(|i| d.add_vertex(format!("y{i}"))).collect();
    for i in 0..3 {
        d.add_arc(xs[i], xs[(i + 1) % 3]).expect("valid");
        d.add_arc(ys[i], ys[(i + 1) % 3]).expect("valid");
    }
    d.add_arc(xs[0], ys[0]).expect("valid");
    d
}

/// A two-party swap across *two* blockchains in each direction: parallel
/// arcs `a→b`, `a→b`, `b→a` — the §5 multigraph extension (Alice transfers
/// assets on distinct blockchains to Bob).
pub fn multigraph_pair() -> Digraph {
    let mut d = Digraph::new();
    let a = d.add_vertex("alice");
    let b = d.add_vertex("bob");
    d.add_arc(a, b).expect("valid");
    d.add_arc(a, b).expect("valid");
    d.add_arc(b, a).expect("valid");
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fvs::FeedbackVertexSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn three_party_shape() {
        let d = herlihy_three_party();
        assert_eq!(d.vertex_count(), 3);
        assert_eq!(d.arc_count(), 3);
        assert!(d.is_strongly_connected());
        assert_eq!(d.diameter(), 3);
    }

    #[test]
    fn two_leader_triangle_shape() {
        let d = two_leader_triangle();
        assert_eq!(d.arc_count(), 6);
        assert!(d.is_strongly_connected());
        assert_eq!(FeedbackVertexSet::minimum(&d).unwrap().vertices().len(), 2);
    }

    #[test]
    fn cycle_properties() {
        for n in 2..8 {
            let d = cycle(n);
            assert!(d.is_strongly_connected(), "C_{n}");
            assert_eq!(d.arc_count(), n);
            assert_eq!(d.diameter(), n);
        }
    }

    #[test]
    fn complete_properties() {
        for n in 2..6 {
            let d = complete(n);
            assert!(d.is_strongly_connected());
            assert_eq!(d.arc_count(), n * (n - 1));
            assert_eq!(d.diameter(), n);
        }
    }

    #[test]
    fn path_is_not_strongly_connected() {
        let d = path(4);
        assert!(!d.is_strongly_connected());
        assert!(d.is_acyclic());
    }

    #[test]
    fn star_properties() {
        let d = star(5);
        assert!(d.is_strongly_connected());
        assert_eq!(d.vertex_count(), 6);
        assert_eq!(d.arc_count(), 10);
        let hub = d.vertex_by_name("hub").unwrap();
        let fvs = FeedbackVertexSet::minimum(&d).unwrap();
        assert_eq!(fvs.vertices().len(), 1);
        assert!(fvs.contains(hub));
    }

    #[test]
    fn flower_properties() {
        let d = flower(3, 4);
        assert!(d.is_strongly_connected());
        assert_eq!(d.vertex_count(), 1 + 3 * 3);
        let fvs = FeedbackVertexSet::minimum(&d).unwrap();
        assert_eq!(fvs.vertices().len(), 1);
        assert!(fvs.contains(d.vertex_by_name("center").unwrap()));
    }

    #[test]
    fn random_strongly_connected_is_strongly_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 3, 5, 10, 25] {
            for p in [0.0, 0.2, 0.8] {
                let d = random_strongly_connected(n, p, &mut rng);
                assert!(d.is_strongly_connected(), "n={n} p={p}");
                assert!(d.arc_count() >= n);
            }
        }
    }

    #[test]
    fn random_strongly_connected_deterministic_per_seed() {
        let d1 = random_strongly_connected(8, 0.3, &mut StdRng::seed_from_u64(9));
        let d2 = random_strongly_connected(8, 0.3, &mut StdRng::seed_from_u64(9));
        assert_eq!(d1, d2);
    }

    #[test]
    fn random_digraph_density_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = random_digraph(5, 0.0, &mut rng);
        assert_eq!(empty.arc_count(), 0);
        let full = random_digraph(5, 1.0, &mut rng);
        assert_eq!(full.arc_count(), 20);
    }

    #[test]
    fn one_way_pair_not_strongly_connected() {
        let d = one_way_pair();
        assert!(!d.is_strongly_connected());
        assert_eq!(d.arc_count(), 1);
    }

    #[test]
    fn bridged_cycles_shape() {
        let d = bridged_cycles();
        assert!(!d.is_strongly_connected());
        assert!(!d.is_acyclic());
        assert_eq!(d.vertex_count(), 6);
        assert_eq!(d.arc_count(), 7);
    }

    #[test]
    fn multigraph_pair_has_parallel_arcs() {
        let d = multigraph_pair();
        let a = d.vertex_by_name("alice").unwrap();
        let b = d.vertex_by_name("bob").unwrap();
        assert_eq!(d.arcs_between(a, b).len(), 2);
        assert!(d.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn cycle_rejects_tiny() {
        let _ = cycle(1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn random_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = random_strongly_connected(3, 1.5, &mut rng);
    }
}
