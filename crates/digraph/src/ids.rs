//! Identifier newtypes for vertexes (parties) and arcs (proposed transfers).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a vertex (a *party*) within one [`Digraph`](crate::Digraph).
///
/// Vertex ids are dense indices `0..n`, assigned in insertion order, so they
/// double as array indices throughout the workspace.
///
/// # Example
///
/// ```
/// use swap_digraph::VertexId;
/// let v = VertexId::new(2);
/// assert_eq!(v.index(), 2);
/// assert_eq!(v.to_string(), "v2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id from a dense index.
    pub const fn new(index: u32) -> Self {
        VertexId(index)
    }

    /// The dense index of this vertex.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

/// Identifies an arc (a *proposed transfer*) within one
/// [`Digraph`](crate::Digraph).
///
/// Arc ids are dense indices `0..m` in insertion order. Because the model is
/// a multigraph, two parallel arcs `(u, v)` have distinct `ArcId`s.
///
/// # Example
///
/// ```
/// use swap_digraph::ArcId;
/// let a = ArcId::new(0);
/// assert_eq!(a.to_string(), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArcId(u32);

impl ArcId {
    /// Creates an arc id from a dense index.
    pub const fn new(index: u32) -> Self {
        ArcId(index)
    }

    /// The dense index of this arc.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<u32> for ArcId {
    fn from(v: u32) -> Self {
        ArcId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_roundtrip() {
        let v = VertexId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.raw(), 7);
        assert_eq!(VertexId::from(7u32), v);
    }

    #[test]
    fn arc_roundtrip() {
        let a = ArcId::new(3);
        assert_eq!(a.index(), 3);
        assert_eq!(a.raw(), 3);
        assert_eq!(ArcId::from(3u32), a);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(ArcId::new(0) < ArcId::new(9));
    }

    #[test]
    fn display() {
        assert_eq!(VertexId::new(4).to_string(), "v4");
        assert_eq!(ArcId::new(11).to_string(), "a11");
    }
}
