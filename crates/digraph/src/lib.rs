//! Swap digraphs: the graph model underlying Herlihy's atomic cross-chain
//! swap protocol (PODC 2018, §2.1 and §3).
//!
//! A cross-chain swap is a directed graph `D = (V, A)` whose vertexes are
//! *parties* and whose arcs are *proposed asset transfers*. Following the
//! paper's conventions exactly:
//!
//! * an arc `(u, v)` has **head** `u` and **tail** `v`; it *leaves* its head
//!   and *enters* its tail (so the asset flows from `u` to `v`),
//! * a **path** `(u₀, …, u_ℓ)` has length `ℓ` and requires `u₀, …, u_{ℓ-1}`
//!   distinct (so a cycle — `u₀ = u_ℓ` — is a path),
//! * `D(u, v)` is the length of the **longest** path from `u` to `v`, and
//!   `diam(D)` is the longest path between any pair — note this is the
//!   *longest*-path diameter, not the usual shortest-path one,
//! * a **feedback vertex set** is a vertex subset whose deletion leaves `D`
//!   acyclic; the protocol's *leaders* must form one (Theorem 4.12).
//!
//! The crate supports directed *multigraphs* (parallel arcs), which §5 of the
//! paper calls out as the natural extension when one party transfers assets
//! to another on several distinct blockchains.
//!
//! # Example
//!
//! ```
//! use swap_digraph::{generators, FeedbackVertexSet};
//!
//! // Alice -> Bob -> Carol -> Alice, the paper's §1 motivating example.
//! let d = generators::herlihy_three_party();
//! assert!(d.is_strongly_connected());
//! assert_eq!(d.diameter(), 3); // the 3-cycle itself is the longest path
//! let fvs = FeedbackVertexSet::minimum(&d).expect("small graph");
//! assert_eq!(fvs.vertices().len(), 1); // one leader suffices
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod digraph;
pub mod encode;
pub mod fvs;
pub mod generators;
pub mod ids;
pub mod path;

pub use digraph::{ArcRef, Digraph, DigraphBuilder};
pub use fvs::FeedbackVertexSet;
pub use ids::{ArcId, VertexId};
pub use path::VertexPath;
