//! Vertex paths, with the paper's exact path semantics.
//!
//! A path `(u₀, …, u_ℓ)` requires `u₀, …, u_{ℓ-1}` to be distinct; the final
//! vertex may equal the first (closing a cycle). Hashkeys carry such paths
//! from a counterparty back to the leader who generated a secret, and the
//! swap contract's `unlock` function validates them (Figure 5, line 30).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::digraph::Digraph;
use crate::ids::VertexId;

/// A non-empty sequence of vertexes forming a candidate path.
///
/// The paper writes `v + p` for prepending vertex `v` to path `p`; that is
/// [`VertexPath::prepend`]. Path *length* counts arcs, so a single-vertex
/// path has length 0 (the "degenerate path" a leader uses to unlock its own
/// entering arcs).
///
/// # Example
///
/// ```
/// use swap_digraph::{generators, VertexPath};
/// let d = generators::herlihy_three_party();
/// let a = d.vertex_by_name("alice").unwrap();
/// let b = d.vertex_by_name("bob").unwrap();
/// let c = d.vertex_by_name("carol").unwrap();
/// let p = VertexPath::single(a);
/// assert_eq!(p.len(), 0);
/// let p = p.prepend(c).prepend(b); // (b, c, a)
/// assert_eq!(p.len(), 2);
/// assert!(p.is_valid_in(&d));
/// assert_eq!(p.start(), b);
/// assert_eq!(p.end(), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexPath {
    vertices: Vec<VertexId>,
}

impl VertexPath {
    /// The degenerate path consisting of a single vertex (length 0).
    pub fn single(v: VertexId) -> Self {
        VertexPath { vertices: vec![v] }
    }

    /// Builds a path from a vertex sequence.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the sequence is empty.
    pub fn from_vertices(vertices: Vec<VertexId>) -> Result<Self, EmptyPathError> {
        if vertices.is_empty() {
            Err(EmptyPathError)
        } else {
            Ok(VertexPath { vertices })
        }
    }

    /// The paper's `v + p`: a new path starting at `v` followed by `self`.
    pub fn prepend(&self, v: VertexId) -> VertexPath {
        let mut vertices = Vec::with_capacity(self.vertices.len() + 1);
        vertices.push(v);
        vertices.extend_from_slice(&self.vertices);
        VertexPath { vertices }
    }

    /// Path length `ℓ` — the number of *arcs*, i.e. one less than the number
    /// of vertexes.
    pub fn len(&self) -> usize {
        self.vertices.len() - 1
    }

    /// Whether this is a degenerate single-vertex path.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first vertex `u₀`.
    pub fn start(&self) -> VertexId {
        self.vertices[0]
    }

    /// The final vertex `u_ℓ`.
    pub fn end(&self) -> VertexId {
        *self.vertices.last().expect("paths are non-empty")
    }

    /// The vertex sequence.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Whether `v` occurs anywhere in the path.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// Validates the paper's path conditions within digraph `d`:
    ///
    /// 1. every vertex exists in `d`,
    /// 2. consecutive vertexes are joined by at least one arc, and
    /// 3. all vertexes but the last are distinct (the last may close a
    ///    cycle).
    pub fn is_valid_in(&self, d: &Digraph) -> bool {
        let n = d.vertex_count();
        if self.vertices.iter().any(|v| v.index() >= n) {
            return false;
        }
        for w in self.vertices.windows(2) {
            if !d.has_arc_between(w[0], w[1]) {
                return false;
            }
        }
        // u₀ … u_{ℓ-1} distinct.
        let prefix = &self.vertices[..self.vertices.len() - 1];
        let mut seen = vec![false; n];
        for v in prefix {
            if seen[v.index()] {
                return false;
            }
            seen[v.index()] = true;
        }
        // The final vertex may only coincide with the *first* vertex.
        if self.vertices.len() >= 2 {
            let last = self.end();
            if prefix[1..].contains(&last) {
                return false;
            }
        }
        true
    }

    /// Stable byte encoding (4 bytes big-endian per vertex), used when paths
    /// are signed and when measuring on-chain bits.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.vertices.len() * 4);
        for v in &self.vertices {
            out.extend_from_slice(&v.raw().to_be_bytes());
        }
        out
    }
}

impl fmt::Display for VertexPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.vertices.iter().map(|v| v.to_string()).collect();
        write!(f, "({})", names.join(","))
    }
}

/// Error returned when constructing a path from an empty vertex sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyPathError;

impl fmt::Display for EmptyPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a path must contain at least one vertex")
    }
}

impl std::error::Error for EmptyPathError {}

/// Enumerates every valid path in `d` from `from` to `to` in which `to`
/// appears only as the final vertex — exactly the candidate hashkey paths
/// for a secret generated by leader `to`, presented by counterparty `from`
/// (Figure 7 of the paper).
///
/// For `from == to` this is the degenerate path plus every cycle through
/// `to`-free interiors back to `to`.
pub fn enumerate_paths(d: &Digraph, from: VertexId, to: VertexId) -> Vec<VertexPath> {
    let mut results = Vec::new();
    if from == to {
        results.push(VertexPath::single(to));
    }
    let mut visited = vec![false; d.vertex_count()];
    visited[from.index()] = true;
    let mut current = vec![from];
    dfs(d, from, to, &mut visited, &mut current, &mut results);
    results.sort();
    results
}

fn dfs(
    d: &Digraph,
    v: VertexId,
    to: VertexId,
    visited: &mut Vec<bool>,
    current: &mut Vec<VertexId>,
    results: &mut Vec<VertexPath>,
) {
    for w in d.successors(v) {
        if w == to {
            let mut vertices = current.clone();
            vertices.push(to);
            results.push(VertexPath { vertices });
        } else if !visited[w.index()] {
            visited[w.index()] = true;
            current.push(w);
            dfs(d, w, to, visited, current, results);
            current.pop();
            visited[w.index()] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;
    use crate::generators;

    fn triangle() -> Digraph {
        generators::herlihy_three_party()
    }

    #[test]
    fn single_vertex_path() {
        let p = VertexPath::single(VertexId::new(0));
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.start(), p.end());
    }

    #[test]
    fn from_vertices_rejects_empty() {
        assert_eq!(VertexPath::from_vertices(vec![]), Err(EmptyPathError));
        assert!(EmptyPathError.to_string().contains("at least one"));
    }

    #[test]
    fn prepend_builds_v_plus_p() {
        let d = triangle();
        let a = d.vertex_by_name("alice").unwrap();
        let b = d.vertex_by_name("bob").unwrap();
        let c = d.vertex_by_name("carol").unwrap();
        let p = VertexPath::single(a).prepend(c).prepend(b);
        assert_eq!(p.vertices(), &[b, c, a]);
        assert_eq!(p.len(), 2);
        assert!(p.contains(c));
    }

    #[test]
    fn validity_checks_arcs() {
        let d = triangle();
        let a = d.vertex_by_name("alice").unwrap();
        let b = d.vertex_by_name("bob").unwrap();
        let c = d.vertex_by_name("carol").unwrap();
        // a->b->c->a all exist.
        assert!(VertexPath::from_vertices(vec![a, b, c]).unwrap().is_valid_in(&d));
        // b->a does not exist in the 3-cycle.
        assert!(!VertexPath::from_vertices(vec![b, a]).unwrap().is_valid_in(&d));
    }

    #[test]
    fn validity_allows_closing_cycle_only() {
        let d = triangle();
        let a = d.vertex_by_name("alice").unwrap();
        let b = d.vertex_by_name("bob").unwrap();
        let c = d.vertex_by_name("carol").unwrap();
        // (a,b,c,a): closes back to the start — valid by the paper's rules.
        assert!(VertexPath::from_vertices(vec![a, b, c, a]).unwrap().is_valid_in(&d));
        // (a,b,c,a,b): repeats interior vertex a — invalid.
        assert!(!VertexPath::from_vertices(vec![a, b, c, a, b]).unwrap().is_valid_in(&d));
    }

    #[test]
    fn validity_rejects_lasso_paths() {
        // d: x -> y -> z -> y would repeat y as interior+final.
        let d = DigraphBuilder::new()
            .vertices(["x", "y", "z"])
            .arc("x", "y")
            .arc("y", "z")
            .arc("z", "y")
            .build();
        let x = d.vertex_by_name("x").unwrap();
        let y = d.vertex_by_name("y").unwrap();
        let z = d.vertex_by_name("z").unwrap();
        assert!(!VertexPath::from_vertices(vec![x, y, z, y]).unwrap().is_valid_in(&d));
    }

    #[test]
    fn validity_rejects_unknown_vertices() {
        let d = triangle();
        let ghost = VertexId::new(42);
        assert!(!VertexPath::single(ghost).is_valid_in(&d));
    }

    #[test]
    fn enumerate_paths_in_triangle() {
        let d = triangle();
        let a = d.vertex_by_name("alice").unwrap();
        let b = d.vertex_by_name("bob").unwrap();
        let c = d.vertex_by_name("carol").unwrap();
        // Paths from bob to leader alice: only (b, c, a).
        let paths = enumerate_paths(&d, b, a);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].vertices(), &[b, c, a]);
        // From alice to herself: degenerate plus the full cycle.
        let self_paths = enumerate_paths(&d, a, a);
        assert_eq!(self_paths.len(), 2);
        assert!(self_paths.iter().any(|p| p.is_empty()));
        assert!(self_paths.iter().any(|p| p.len() == 3));
    }

    #[test]
    fn enumerate_paths_two_leader_triangle() {
        // Figure 7's digraph: all six arcs among three parties. Paths from C
        // to leader A: (c,a), (c,b,a).
        let d = generators::two_leader_triangle();
        let a = d.vertex_by_name("alice").unwrap();
        let c = d.vertex_by_name("carol").unwrap();
        let paths = enumerate_paths(&d, c, a);
        let lens: Vec<usize> = paths.iter().map(|p| p.len()).collect();
        assert_eq!(paths.len(), 2);
        assert!(lens.contains(&1) && lens.contains(&2));
        for p in &paths {
            assert!(p.is_valid_in(&d));
            assert_eq!(p.start(), c);
            assert_eq!(p.end(), a);
        }
    }

    #[test]
    fn to_bytes_is_stable_and_distinct() {
        let p1 = VertexPath::from_vertices(vec![VertexId::new(1), VertexId::new(2)]).unwrap();
        let p2 = VertexPath::from_vertices(vec![VertexId::new(2), VertexId::new(1)]).unwrap();
        assert_eq!(p1.to_bytes().len(), 8);
        assert_ne!(p1.to_bytes(), p2.to_bytes());
        assert_eq!(p1.to_bytes(), p1.to_bytes());
    }

    #[test]
    fn display_format() {
        let p = VertexPath::from_vertices(vec![VertexId::new(0), VertexId::new(2)]).unwrap();
        assert_eq!(p.to_string(), "(v0,v2)");
    }
}
