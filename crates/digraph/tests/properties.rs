//! Property tests for the digraph layer: structural invariants the
//! protocol's theorems lean on.

use std::collections::BTreeSet;

use proptest::prelude::*;
use swap_digraph::path::enumerate_paths;
use swap_digraph::{algo, encode, generators, FeedbackVertexSet, VertexId};
use swap_sim::SimRng;

fn arb_strongly_connected() -> impl Strategy<Value = swap_digraph::Digraph> {
    (2usize..9, 0.0f64..0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        generators::random_strongly_connected(n, p, &mut SimRng::from_seed(seed))
    })
}

fn arb_any_digraph() -> impl Strategy<Value = swap_digraph::Digraph> {
    (1usize..9, 0.0f64..0.6, any::<u64>())
        .prop_map(|(n, p, seed)| generators::random_digraph(n, p, &mut SimRng::from_seed(seed)))
}

proptest! {
    /// Transposition is an involution preserving counts and reversing arcs.
    #[test]
    fn transpose_involution(d in arb_any_digraph()) {
        let t = d.transpose();
        prop_assert_eq!(t.vertex_count(), d.vertex_count());
        prop_assert_eq!(t.arc_count(), d.arc_count());
        prop_assert_eq!(t.transpose(), d.clone());
        for arc in d.arcs() {
            prop_assert_eq!(t.head(arc.id), arc.tail);
            prop_assert_eq!(t.tail(arc.id), arc.head);
        }
        // §2.1: D strongly connected ⇔ Dᵀ strongly connected.
        prop_assert_eq!(d.is_strongly_connected(), t.is_strongly_connected());
    }

    /// Minimum and greedy feedback vertex sets are always valid, greedy is
    /// never smaller than minimum, and an FVS for D is one for Dᵀ.
    #[test]
    fn fvs_invariants(d in arb_strongly_connected()) {
        let exact = FeedbackVertexSet::minimum(&d).expect("small digraph");
        let greedy = FeedbackVertexSet::greedy(&d);
        prop_assert!(FeedbackVertexSet::is_feedback_vertex_set(&d, exact.vertices()));
        prop_assert!(FeedbackVertexSet::is_feedback_vertex_set(&d, greedy.vertices()));
        prop_assert!(greedy.vertices().len() >= exact.vertices().len());
        prop_assert!(FeedbackVertexSet::is_feedback_vertex_set(&d.transpose(), exact.vertices()));
        // Strongly connected with ≥2 vertexes means there is a cycle, so
        // the FVS is non-empty.
        if d.vertex_count() >= 2 {
            prop_assert!(!exact.vertices().is_empty());
        }
    }

    /// Deleting an FVS really leaves an acyclic digraph with a topological
    /// order consistent with the surviving arcs.
    #[test]
    fn fvs_deletion_gives_topo_order(d in arb_strongly_connected()) {
        let fvs = FeedbackVertexSet::minimum(&d).expect("small digraph");
        let rest = d.delete_vertices(fvs.vertices());
        let order = algo::topological_order(&rest).expect("acyclic after deletion");
        let pos: Vec<usize> = {
            let mut p = vec![0; rest.vertex_count()];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for arc in rest.arcs() {
            prop_assert!(pos[arc.head.index()] < pos[arc.tail.index()]);
        }
    }

    /// The exact diameter is bounded by |V| and reaches |V| exactly on
    /// Hamiltonian-cycle-bearing digraphs; all enumerated hashkey paths
    /// respect it.
    #[test]
    fn diameter_bounds_paths(d in arb_strongly_connected()) {
        prop_assume!(d.vertex_count() <= 8);
        let diam = algo::diameter_exact(&d).expect("within limit");
        prop_assert!(diam <= d.vertex_count());
        prop_assert!(diam >= 2, "strongly connected with n ≥ 2 has a cycle ≥ 2");
        let fvs = FeedbackVertexSet::minimum(&d).expect("small digraph");
        for &leader in fvs.vertices() {
            for v in d.vertices() {
                for p in enumerate_paths(&d, v, leader) {
                    prop_assert!(p.len() <= diam, "path {p} longer than diam {diam}");
                    prop_assert!(p.is_valid_in(&d));
                    prop_assert_eq!(p.start(), v);
                    prop_assert_eq!(p.end(), leader);
                }
            }
        }
    }

    /// Paths enumerated between any pair are distinct and valid.
    #[test]
    fn enumerated_paths_unique_and_valid(d in arb_strongly_connected()) {
        let vs: Vec<VertexId> = d.vertices().collect();
        let from = vs[0];
        let to = vs[vs.len() - 1];
        let paths = enumerate_paths(&d, from, to);
        let set: BTreeSet<_> = paths.iter().collect();
        prop_assert_eq!(set.len(), paths.len(), "duplicate paths");
        for p in &paths {
            prop_assert!(p.is_valid_in(&d));
        }
        // Strong connectivity guarantees at least one path between any
        // ordered pair.
        prop_assert!(!paths.is_empty());
    }

    /// Binary encoding round-trips every digraph.
    #[test]
    fn encode_decode_roundtrip(d in arb_any_digraph()) {
        let bytes = encode::encode(&d);
        prop_assert_eq!(bytes.len(), encode::encoded_len(&d));
        let back = encode::decode(&bytes).expect("roundtrip");
        prop_assert_eq!(back.vertex_count(), d.vertex_count());
        prop_assert_eq!(back.arc_count(), d.arc_count());
        for (a, b) in d.arcs().zip(back.arcs()) {
            prop_assert_eq!(a.head, b.head);
            prop_assert_eq!(a.tail, b.tail);
        }
    }

    /// SCC decomposition partitions the vertexes, and the condensation is
    /// acyclic.
    #[test]
    fn scc_partition_and_condensation(d in arb_any_digraph()) {
        let comps = algo::strongly_connected_components(&d);
        let mut seen = BTreeSet::new();
        for comp in &comps {
            for v in comp {
                prop_assert!(seen.insert(*v), "vertex in two components");
            }
        }
        prop_assert_eq!(seen.len(), d.vertex_count());
        let (cond, member) = algo::condensation(&d);
        prop_assert!(cond.is_acyclic());
        prop_assert_eq!(member.len(), d.vertex_count());
        // Strong connectivity ⇔ single component.
        prop_assert_eq!(d.is_strongly_connected(), cond.vertex_count() <= 1);
    }

    /// In-degrees and out-degrees both sum to |A|.
    #[test]
    fn degree_sums(d in arb_any_digraph()) {
        let in_sum: usize = d.vertices().map(|v| d.in_degree(v)).sum();
        let out_sum: usize = d.vertices().map(|v| d.out_degree(v)).sum();
        prop_assert_eq!(in_sum, d.arc_count());
        prop_assert_eq!(out_sum, d.arc_count());
    }
}
