//! [`SpecBuilder`]: assemble a validated [`SwapSpec`] from parts.

use std::fmt;

use swap_contract::spec::SpecError;
use swap_contract::SwapSpec;
use swap_crypto::{Address, Hashlock, MssPublicKey};
use swap_digraph::algo::EXACT_DIAMETER_LIMIT;
use swap_digraph::{Digraph, FeedbackVertexSet, VertexId};
use swap_sim::{Delta, SimTime};

/// How the builder picks the leader set when none is given explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeaderStrategy {
    /// Exact minimum feedback vertex set (branch-and-bound; small graphs).
    #[default]
    MinimumExact,
    /// Greedy heuristic feedback vertex set (any size, possibly larger).
    Greedy,
    /// Exact minimum leaders, *and* a clearing-level bias: when several
    /// disjoint-cycle decompositions of the book tie on matched offers, the
    /// clearing service prefers the one made of shorter cycles (pairing off
    /// mutual two-party trades first). Every cleared cycle is single-leader
    /// feasible either way, but shorter cycles carry strictly smaller
    /// Lemma 4.13 timeout ladders, so they are strictly cheaper to execute
    /// under the §4.6 single-leader HTLC protocol. For spec assembly this
    /// behaves exactly like [`LeaderStrategy::MinimumExact`]; the bias
    /// lives in [`crate::ClearingService::clear`].
    PreferSingleLeader,
}

/// Errors from [`SpecBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A vertex has no identity (key + hashlock) registered.
    MissingIdentity(VertexId),
    /// An identity was registered for a nonexistent vertex.
    UnknownVertex(VertexId),
    /// Exact leader search exceeded its budget; use
    /// [`LeaderStrategy::Greedy`].
    LeaderSearchExceeded,
    /// The assembled spec failed validation.
    Spec(SpecError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingIdentity(v) => write!(f, "vertex {v} has no identity"),
            BuildError::UnknownVertex(v) => write!(f, "identity given for unknown vertex {v}"),
            BuildError::LeaderSearchExceeded => {
                write!(f, "exact leader search exceeded its budget")
            }
            BuildError::Spec(e) => write!(f, "invalid spec: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<SpecError> for BuildError {
    fn from(e: SpecError) -> Self {
        BuildError::Spec(e)
    }
}

/// Incremental construction of a [`SwapSpec`] over a given digraph.
///
/// # Example
///
/// ```
/// use swap_crypto::{MssKeypair, Secret};
/// use swap_digraph::generators;
/// use swap_market::SpecBuilder;
/// use swap_sim::{Delta, SimTime};
///
/// let d = generators::herlihy_three_party();
/// let mut builder = SpecBuilder::new(d.clone());
/// for (i, v) in d.vertices().enumerate() {
///     let kp = MssKeypair::from_seed_with_height([i as u8 + 1; 32], 2);
///     let secret = Secret::from_bytes([i as u8 + 50; 32]);
///     builder.identity(v, kp.public_key(), secret.hashlock());
/// }
/// let spec = builder
///     .delta(Delta::from_ticks(10))
///     .start(SimTime::from_ticks(10))
///     .build()
///     .unwrap();
/// assert_eq!(spec.leaders.len(), 1);
/// spec.validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    digraph: Digraph,
    identities: Vec<Option<(MssPublicKey, Hashlock)>>,
    delta: Delta,
    start: SimTime,
    leaders: Option<Vec<VertexId>>,
    strategy: LeaderStrategy,
    diam_override: Option<u64>,
    broadcast_arcs: bool,
}

impl SpecBuilder {
    /// Starts a builder for `digraph` with default Δ and a start of Δ after
    /// zero ("a starting time T, at least Δ in the future").
    pub fn new(digraph: Digraph) -> Self {
        let n = digraph.vertex_count();
        let delta = Delta::default();
        SpecBuilder {
            digraph,
            identities: vec![None; n],
            delta,
            start: SimTime::ZERO + delta.times(1),
            leaders: None,
            strategy: LeaderStrategy::default(),
            diam_override: None,
            broadcast_arcs: false,
        }
    }

    /// Registers vertex `v`'s verification key and hashlock.
    pub fn identity(&mut self, v: VertexId, key: MssPublicKey, hashlock: Hashlock) -> &mut Self {
        if v.index() < self.identities.len() {
            self.identities[v.index()] = Some((key, hashlock));
        } else {
            // Remember the error for build() by growing with a sentinel; the
            // simplest correct behavior is to fail fast instead.
            panic!("identity for unknown vertex {v}");
        }
        self
    }

    /// Sets the synchrony parameter Δ.
    pub fn delta(&mut self, delta: Delta) -> &mut Self {
        self.delta = delta;
        self
    }

    /// Sets the protocol start time `T`.
    pub fn start(&mut self, start: SimTime) -> &mut Self {
        self.start = start;
        self
    }

    /// Fixes the leader set explicitly (it is still validated as an FVS).
    pub fn leaders(&mut self, leaders: Vec<VertexId>) -> &mut Self {
        self.leaders = Some(leaders);
        self
    }

    /// Chooses the leader-election strategy for when no explicit set is
    /// given.
    pub fn leader_strategy(&mut self, strategy: LeaderStrategy) -> &mut Self {
        self.strategy = strategy;
        self
    }

    /// Enables the §4.5 broadcast optimization: contracts will accept
    /// length-one hashkey paths from any vertex to any leader.
    pub fn broadcast_arcs(&mut self, enabled: bool) -> &mut Self {
        self.broadcast_arcs = enabled;
        self
    }

    /// Overrides the published diameter value (it is still validated to be
    /// large enough). Useful for testing looser timelocks.
    pub fn diameter(&mut self, diam: u64) -> &mut Self {
        self.diam_override = Some(diam);
        self
    }

    /// Assembles and validates the spec.
    ///
    /// # Errors
    ///
    /// See [`BuildError`]; notably, every vertex needs an identity and the
    /// final spec must pass [`SwapSpec::validate`].
    pub fn build(&self) -> Result<SwapSpec, BuildError> {
        let n = self.digraph.vertex_count();
        let mut keys = Vec::with_capacity(n);
        let mut addresses: Vec<Address> = Vec::with_capacity(n);
        let mut hashlocks_by_vertex = Vec::with_capacity(n);
        for (i, slot) in self.identities.iter().enumerate() {
            let (key, hashlock) =
                slot.as_ref().ok_or(BuildError::MissingIdentity(VertexId::new(i as u32)))?;
            keys.push(*key);
            addresses.push(key.address());
            hashlocks_by_vertex.push(*hashlock);
        }
        let leaders = match &self.leaders {
            Some(ls) => {
                let mut ls = ls.clone();
                ls.sort();
                ls.dedup();
                ls
            }
            None => match self.strategy {
                LeaderStrategy::MinimumExact | LeaderStrategy::PreferSingleLeader => {
                    FeedbackVertexSet::minimum(&self.digraph)
                        .ok_or(BuildError::LeaderSearchExceeded)?
                        .into_vertices()
                        .into_iter()
                        .collect()
                }
                LeaderStrategy::Greedy => {
                    FeedbackVertexSet::greedy(&self.digraph).into_vertices().into_iter().collect()
                }
            },
        };
        let hashlocks = leaders
            .iter()
            .map(|&l| {
                hashlocks_by_vertex
                    .get(l.index())
                    .copied()
                    .ok_or(BuildError::Spec(SpecError::UnknownLeaderVertex(l)))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let diam = self.diam_override.unwrap_or_else(|| {
            if n <= EXACT_DIAMETER_LIMIT {
                self.digraph.diameter() as u64
            } else {
                self.digraph.diameter_upper_bound() as u64
            }
        });
        let spec = SwapSpec {
            digraph: self.digraph.clone(),
            leaders,
            hashlocks,
            addresses,
            keys,
            start: self.start,
            delta: self.delta,
            diam,
            broadcast_arcs: self.broadcast_arcs,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_crypto::{MssKeypair, Secret};
    use swap_digraph::generators;

    fn builder_for(d: Digraph) -> SpecBuilder {
        let mut b = SpecBuilder::new(d.clone());
        for (i, v) in d.vertices().enumerate() {
            let kp = MssKeypair::from_seed_with_height([i as u8 + 1; 32], 2);
            let secret = Secret::from_bytes([i as u8 + 50; 32]);
            b.identity(v, kp.public_key(), secret.hashlock());
        }
        b
    }

    #[test]
    fn builds_minimum_leader_spec() {
        let spec = builder_for(generators::herlihy_three_party()).build().unwrap();
        assert_eq!(spec.leaders.len(), 1);
        assert_eq!(spec.hashlocks.len(), 1);
        assert_eq!(spec.diam, 3);
        spec.validate().unwrap();
    }

    #[test]
    fn two_leader_triangle_gets_two_leaders() {
        let spec = builder_for(generators::two_leader_triangle()).build().unwrap();
        assert_eq!(spec.leaders.len(), 2);
    }

    #[test]
    fn greedy_strategy_also_valid() {
        let mut b = builder_for(generators::complete(5));
        b.leader_strategy(LeaderStrategy::Greedy);
        let spec = b.build().unwrap();
        spec.validate().unwrap();
        assert!(spec.leaders.len() >= 4);
    }

    #[test]
    fn explicit_leaders_validated() {
        let d = generators::two_leader_triangle();
        let mut b = builder_for(d);
        // One vertex is not an FVS here.
        b.leaders(vec![VertexId::new(0)]);
        let err = b.build().unwrap_err();
        assert_eq!(err, BuildError::Spec(SpecError::LeadersNotFeedbackVertexSet));
    }

    #[test]
    fn explicit_leaders_deduplicated() {
        let d = generators::herlihy_three_party();
        let mut b = builder_for(d);
        b.leaders(vec![VertexId::new(0), VertexId::new(0)]);
        let spec = b.build().unwrap();
        assert_eq!(spec.leaders, vec![VertexId::new(0)]);
    }

    #[test]
    fn missing_identity_reported() {
        let d = generators::herlihy_three_party();
        let mut b = SpecBuilder::new(d.clone());
        let kp = MssKeypair::from_seed_with_height([1u8; 32], 2);
        b.identity(VertexId::new(0), kp.public_key(), Secret::from_bytes([1u8; 32]).hashlock());
        let err = b.build().unwrap_err();
        assert_eq!(err, BuildError::MissingIdentity(VertexId::new(1)));
        assert!(err.to_string().contains("identity"));
    }

    #[test]
    fn diameter_override_respected_and_validated() {
        let mut b = builder_for(generators::herlihy_three_party());
        b.diameter(50);
        assert_eq!(b.build().unwrap().diam, 50);
        let mut b2 = builder_for(generators::herlihy_three_party());
        b2.diameter(1); // below true diameter 3
        assert!(matches!(
            b2.build().unwrap_err(),
            BuildError::Spec(SpecError::DiameterTooSmall { .. })
        ));
    }

    #[test]
    fn custom_delta_and_start() {
        let mut b = builder_for(generators::herlihy_three_party());
        b.delta(Delta::from_ticks(7)).start(SimTime::from_ticks(21));
        let spec = b.build().unwrap();
        assert_eq!(spec.delta.ticks(), 7);
        assert_eq!(spec.start, SimTime::from_ticks(21));
    }

    #[test]
    fn large_graph_uses_upper_bound_diameter() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let d = generators::random_strongly_connected(20, 0.1, &mut rng);
        let mut b = builder_for(d.clone());
        b.leader_strategy(LeaderStrategy::Greedy);
        let spec = b.build().unwrap();
        assert_eq!(spec.diam, 20);
        spec.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "unknown vertex")]
    fn identity_for_unknown_vertex_panics() {
        let d = generators::herlihy_three_party();
        let kp = MssKeypair::from_seed_with_height([1u8; 32], 2);
        SpecBuilder::new(d).identity(
            VertexId::new(9),
            kp.public_key(),
            Secret::from_bytes([1u8; 32]).hashlock(),
        );
    }
}
