//! Offer collection and cycle clearing.
//!
//! The "clearing problem" — deciding *which* swaps to execute — is the
//! barter-exchange matching the paper cites (Kaplan; Abraham et al. for
//! kidney exchanges). This module implements the classic single-offer
//! variant: each party offers to give one asset kind and wants one asset
//! kind; the service matches gives to wants and decomposes the resulting
//! assignment into disjoint trade cycles, each of which becomes an atomic
//! swap instance.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};
use swap_contract::SwapSpec;
use swap_crypto::{Hashlock, MssPublicKey};
use swap_digraph::{Digraph, VertexId};
use swap_sim::{Delta, SimTime};

use crate::builder::{BuildError, LeaderStrategy, SpecBuilder};

/// A label for a tradable asset category, e.g. `"btc"`, `"altcoin"`,
/// `"cadillac-title"`. Matching is exact on the label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AssetKind(pub String);

impl AssetKind {
    /// Creates a kind label.
    pub fn new(s: impl Into<String>) -> Self {
        AssetKind(s.into())
    }
}

impl fmt::Display for AssetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies a submitted offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OfferId(u64);

impl OfferId {
    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for OfferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offer{}", self.0)
    }
}

/// What a party sends the clearing service (§4.2): its verification key,
/// its freshly generated hashlock, and the trade it is willing to make.
#[derive(Debug, Clone, PartialEq)]
pub struct Offer {
    /// The party's signature-verification key (address derives from it).
    pub key: MssPublicKey,
    /// The party's hashlock `H(s)` — every party sends one, whether or not
    /// it ends up a leader.
    pub hashlock: Hashlock,
    /// The asset kind this party will relinquish.
    pub gives: AssetKind,
    /// The asset kind this party demands.
    pub wants: AssetKind,
}

/// One cleared swap instance: the published spec plus the offer-level
/// bookkeeping parties need to re-verify it.
#[derive(Debug, Clone)]
pub struct ClearedSwap {
    /// The validated swap specification.
    pub spec: SwapSpec,
    /// Which offer each digraph vertex corresponds to.
    pub offer_of_vertex: Vec<OfferId>,
    /// The asset kind carried by each arc (indexed by arc id).
    pub arc_kinds: Vec<AssetKind>,
}

/// Errors from [`ClearingService::clear`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClearError {
    /// Spec assembly failed for a matched cycle (should not happen for
    /// well-formed offers; surfaced rather than hidden).
    Build(BuildError),
}

impl fmt::Display for ClearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClearError::Build(e) => write!(f, "failed to assemble cleared swap: {e}"),
        }
    }
}

impl std::error::Error for ClearError {}

impl From<BuildError> for ClearError {
    fn from(e: BuildError) -> Self {
        ClearError::Build(e)
    }
}

/// The (untrusted) market-clearing service.
///
/// # Example
///
/// ```
/// use swap_crypto::{MssKeypair, Secret};
/// use swap_market::{AssetKind, ClearingService, Offer};
/// use swap_sim::{Delta, SimTime};
///
/// let mut svc = ClearingService::new();
/// // Alice: altcoin → wants cadillac; Bob: btc → wants altcoin;
/// // Carol: cadillac → wants btc. One 3-cycle clears.
/// for (i, (gives, wants)) in [("altcoin", "cadillac"), ("btc", "altcoin"), ("cadillac", "btc")]
///     .iter()
///     .enumerate()
/// {
///     let kp = MssKeypair::from_seed_with_height([i as u8 + 1; 32], 2);
///     let s = Secret::from_bytes([i as u8 + 10; 32]);
///     svc.submit(Offer {
///         key: kp.public_key(),
///         hashlock: s.hashlock(),
///         gives: AssetKind::new(*gives),
///         wants: AssetKind::new(*wants),
///     });
/// }
/// let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
/// assert_eq!(swaps.len(), 1);
/// assert_eq!(swaps[0].spec.digraph.vertex_count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClearingService {
    offers: Vec<Offer>,
    leader_strategy: LeaderStrategy,
}

impl ClearingService {
    /// Creates an empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the leader-election strategy for cleared swaps.
    pub fn with_leader_strategy(mut self, strategy: LeaderStrategy) -> Self {
        self.leader_strategy = strategy;
        self
    }

    /// Accepts an offer, returning its id.
    pub fn submit(&mut self, offer: Offer) -> OfferId {
        self.offers.push(offer);
        OfferId(self.offers.len() as u64 - 1)
    }

    /// The offer with the given id.
    pub fn offer(&self, id: OfferId) -> Option<&Offer> {
        self.offers.get(id.0 as usize)
    }

    /// Number of submitted offers.
    pub fn offer_count(&self) -> usize {
        self.offers.len()
    }

    /// Matches offers into disjoint trade cycles and publishes one
    /// [`ClearedSwap`] per cycle. Unmatched offers are left for a future
    /// round (their ids remain valid).
    ///
    /// The matching is greedy FIFO per asset kind: the first submitted
    /// demand for kind `k` is paired with the first unmatched supply of
    /// `k`. Deterministic, order-sensitive, and O(n) — richer strategies
    /// (maximum-cycle-cover) belong to the clearing literature the paper
    /// cites, not to the swap protocol itself.
    ///
    /// The start time of every published spec is `now + Δ` ("at least Δ in
    /// the future").
    ///
    /// # Errors
    ///
    /// Propagates spec-assembly failures (which indicate malformed offers,
    /// e.g. duplicate keys).
    pub fn clear(&self, delta: Delta, now: SimTime) -> Result<Vec<ClearedSwap>, ClearError> {
        let n = self.offers.len();
        // supply[kind] = queue of offer indices giving that kind.
        let mut supply: BTreeMap<&AssetKind, VecDeque<usize>> = BTreeMap::new();
        for (i, o) in self.offers.iter().enumerate() {
            supply.entry(&o.gives).or_default().push_back(i);
        }
        // successor[i] = offer receiving i's asset.
        let mut successor: Vec<Option<usize>> = vec![None; n];
        let mut has_supplier = vec![false; n];
        for (i, o) in self.offers.iter().enumerate() {
            if let Some(queue) = supply.get_mut(&o.wants) {
                if let Some(giver) = queue.pop_front() {
                    successor[giver] = Some(i);
                    has_supplier[i] = true;
                }
            }
        }
        // An offer participates only if it both gives to someone and
        // receives from someone; walk permutation cycles among those.
        let mut visited = vec![false; n];
        let mut swaps = Vec::new();
        for start in 0..n {
            if visited[start] || successor[start].is_none() || !has_supplier[start] {
                continue;
            }
            // Trace the cycle; bail if it wanders into non-participants.
            let mut cycle = vec![start];
            visited[start] = true;
            let mut cur = successor[start].expect("checked above");
            let mut closed = false;
            while !visited[cur] {
                visited[cur] = true;
                cycle.push(cur);
                match successor[cur] {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            if cur == start {
                closed = true;
            }
            if !closed || cycle.len() < 2 {
                continue;
            }
            swaps.push(self.assemble(&cycle, delta, now)?);
        }
        Ok(swaps)
    }

    /// Builds the digraph and spec for one cleared cycle of offer indices.
    fn assemble(
        &self,
        cycle: &[usize],
        delta: Delta,
        now: SimTime,
    ) -> Result<ClearedSwap, ClearError> {
        let mut digraph = Digraph::new();
        for &i in cycle {
            digraph.add_vertex(format!("offer{i}"));
        }
        let k = cycle.len();
        let mut arc_kinds = Vec::with_capacity(k);
        for (pos, &offer_idx) in cycle.iter().enumerate() {
            let head = VertexId::new(pos as u32);
            let tail = VertexId::new(((pos + 1) % k) as u32);
            digraph.add_arc(head, tail).expect("cycle arcs valid");
            arc_kinds.push(self.offers[offer_idx].gives.clone());
        }
        let mut builder = SpecBuilder::new(digraph);
        builder.delta(delta).start(now + delta.times(1)).leader_strategy(self.leader_strategy);
        for (pos, &i) in cycle.iter().enumerate() {
            let offer = &self.offers[i];
            builder.identity(VertexId::new(pos as u32), offer.key, offer.hashlock);
        }
        let spec = builder.build()?;
        Ok(ClearedSwap {
            spec,
            offer_of_vertex: cycle.iter().map(|&i| OfferId(i as u64)).collect(),
            arc_kinds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_crypto::{MssKeypair, Secret};

    fn offer(seed: u8, gives: &str, wants: &str) -> Offer {
        let kp = MssKeypair::from_seed_with_height([seed; 32], 2);
        Offer {
            key: kp.public_key(),
            hashlock: Secret::from_bytes([seed + 100; 32]).hashlock(),
            gives: AssetKind::new(gives),
            wants: AssetKind::new(wants),
        }
    }

    #[test]
    fn three_way_cycle_clears() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "altcoin", "cadillac"));
        svc.submit(offer(2, "btc", "altcoin"));
        svc.submit(offer(3, "cadillac", "btc"));
        let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        assert_eq!(swaps.len(), 1);
        let swap = &swaps[0];
        assert_eq!(swap.spec.digraph.vertex_count(), 3);
        assert_eq!(swap.spec.digraph.arc_count(), 3);
        assert!(swap.spec.digraph.is_strongly_connected());
        swap.spec.validate().unwrap();
        // Start at least Δ in the future.
        assert!(swap.spec.start >= SimTime::ZERO + Delta::from_ticks(10).times(1));
        // Arc kinds follow the givers around the cycle.
        assert_eq!(swap.arc_kinds.len(), 3);
    }

    #[test]
    fn two_way_swap_clears() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "eth"));
        svc.submit(offer(2, "eth", "btc"));
        let swaps = svc.clear(Delta::from_ticks(5), SimTime::from_ticks(100)).unwrap();
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].spec.digraph.vertex_count(), 2);
        assert_eq!(swaps[0].spec.leaders.len(), 1);
    }

    #[test]
    fn disjoint_cycles_clear_separately() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "a", "b"));
        svc.submit(offer(2, "b", "a"));
        svc.submit(offer(3, "x", "y"));
        svc.submit(offer(4, "y", "z"));
        svc.submit(offer(5, "z", "x"));
        let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        assert_eq!(swaps.len(), 2);
        let sizes: Vec<usize> = swaps.iter().map(|s| s.spec.digraph.vertex_count()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&3));
    }

    #[test]
    fn unmatched_offers_left_out() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "eth"));
        svc.submit(offer(2, "eth", "btc"));
        svc.submit(offer(3, "doge", "btc")); // nobody gives doge demand… nobody wants doge
        let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        // The btc/eth pair may still clear; doge cannot.
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].spec.digraph.vertex_count(), 2);
        assert_eq!(svc.offer_count(), 3);
        assert!(svc.offer(OfferId(2)).is_some());
    }

    #[test]
    fn no_offers_no_swaps() {
        let svc = ClearingService::new();
        let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        assert!(swaps.is_empty());
    }

    #[test]
    fn self_satisfying_offer_not_a_swap() {
        // A party giving and wanting the same kind would form a self-loop;
        // cycles of length 1 are rejected.
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "btc"));
        let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        assert!(swaps.is_empty());
    }

    #[test]
    fn offer_of_vertex_maps_back() {
        let mut svc = ClearingService::new();
        let id0 = svc.submit(offer(1, "a", "b"));
        let id1 = svc.submit(offer(2, "b", "a"));
        let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        let cleared = &swaps[0];
        assert_eq!(cleared.offer_of_vertex.len(), 2);
        assert!(cleared.offer_of_vertex.contains(&id0));
        assert!(cleared.offer_of_vertex.contains(&id1));
        // Vertex identities match the offers' keys.
        for (pos, oid) in cleared.offer_of_vertex.iter().enumerate() {
            let o = svc.offer(*oid).unwrap();
            assert_eq!(cleared.spec.keys[pos], o.key);
        }
    }

    #[test]
    fn clearing_is_deterministic() {
        let mut svc = ClearingService::new();
        for i in 0..4 {
            svc.submit(offer(i + 1, &format!("k{i}"), &format!("k{}", (i + 1) % 4)));
        }
        let a = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        let b = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
        }
    }

    #[test]
    fn larger_market_mixed_kinds() {
        let mut svc = ClearingService::new();
        // 4-cycle plus a 2-cycle plus two stragglers.
        svc.submit(offer(1, "a", "b"));
        svc.submit(offer(2, "b", "c"));
        svc.submit(offer(3, "c", "d"));
        svc.submit(offer(4, "d", "a"));
        svc.submit(offer(5, "p", "q"));
        svc.submit(offer(6, "q", "p"));
        svc.submit(offer(7, "zzz", "a")); // loses the race for kind "a"
        let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        assert_eq!(swaps.len(), 2);
        let total: usize = swaps.iter().map(|s| s.spec.digraph.vertex_count()).sum();
        assert_eq!(total, 6);
        for s in &swaps {
            s.spec.validate().unwrap();
        }
    }
}
