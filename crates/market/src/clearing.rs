//! Offer collection, the offer lifecycle, and epoch-based cycle clearing.
//!
//! The "clearing problem" — deciding *which* swaps to execute — is the
//! barter-exchange matching the paper cites (Kaplan; Abraham et al. for
//! kidney exchanges). This module implements the classic single-offer
//! variant: each party offers to give one asset kind and wants one asset
//! kind; the service matches gives to wants and decomposes the resulting
//! assignment into disjoint trade cycles, each of which becomes an atomic
//! swap instance.
//!
//! # Offer lifecycle
//!
//! Every submitted offer moves through a strict lifecycle:
//!
//! ```text
//! Open ──cancel()──────────────▶ Cancelled          (terminal)
//!   │
//!   └──clear()──▶ Matched { epoch, swap }
//!                    │
//!                    ├──settle_swap()──▶ Settled    (terminal)
//!                    └──refund_swap()──▶ Refunded   (terminal)
//! ```
//!
//! [`ClearingService::clear`] runs one *epoch*: it matches only the
//! currently [`OfferStatus::Open`] offers and consumes every offer it
//! matches — a matched offer can never be re-matched by a later epoch, and
//! a cancelled offer can never be matched at all. Unmatched offers stay
//! `Open` and roll into the next epoch's book.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};
use swap_contract::SwapSpec;
use swap_crypto::{Address, Hashlock, MssPublicKey};
use swap_digraph::{Digraph, VertexId};
use swap_sim::{Delta, SimTime};

use crate::builder::{BuildError, LeaderStrategy, SpecBuilder};

/// A label for a tradable asset category, e.g. `"btc"`, `"altcoin"`,
/// `"cadillac-title"`. Matching is exact on the label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AssetKind(pub String);

impl AssetKind {
    /// Creates a kind label.
    pub fn new(s: impl Into<String>) -> Self {
        AssetKind(s.into())
    }
}

impl fmt::Display for AssetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies a submitted offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OfferId(u64);

impl OfferId {
    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for OfferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offer{}", self.0)
    }
}

/// Identifies one cleared swap instance, unique across all epochs of a
/// [`ClearingService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwapId(u64);

impl SwapId {
    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SwapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "swap{}", self.0)
    }
}

/// Where an offer currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferStatus {
    /// Submitted and available to the next clearing epoch.
    Open,
    /// Withdrawn by its party before it was matched (terminal).
    Cancelled,
    /// Matched into a cleared swap; awaiting execution.
    Matched {
        /// The epoch whose clearing matched the offer.
        epoch: u64,
        /// The swap instance the offer is part of.
        swap: SwapId,
    },
    /// The matched swap executed and every arc triggered (terminal).
    Settled,
    /// The matched swap executed but was torn down with refunds (terminal).
    Refunded,
}

impl fmt::Display for OfferStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfferStatus::Open => write!(f, "open"),
            OfferStatus::Cancelled => write!(f, "cancelled"),
            OfferStatus::Matched { epoch, swap } => {
                write!(f, "matched into {swap} at epoch {epoch}")
            }
            OfferStatus::Settled => write!(f, "settled"),
            OfferStatus::Refunded => write!(f, "refunded"),
        }
    }
}

/// What a party sends the clearing service (§4.2): its verification key,
/// its freshly generated hashlock, and the trade it is willing to make.
#[derive(Debug, Clone, PartialEq)]
pub struct Offer {
    /// The party's signature-verification key (address derives from it).
    pub key: MssPublicKey,
    /// The party's hashlock `H(s)` — every party sends one, whether or not
    /// it ends up a leader.
    pub hashlock: Hashlock,
    /// The asset kind this party will relinquish.
    pub gives: AssetKind,
    /// The asset kind this party demands.
    pub wants: AssetKind,
}

/// One cleared swap instance: the published spec plus the offer-level
/// bookkeeping parties need to re-verify it.
#[derive(Debug, Clone)]
pub struct ClearedSwap {
    /// The service-wide unique id of this swap instance.
    pub id: SwapId,
    /// The epoch whose clearing produced it.
    pub epoch: u64,
    /// The validated swap specification.
    pub spec: SwapSpec,
    /// Which offer each digraph vertex corresponds to.
    pub offer_of_vertex: Vec<OfferId>,
    /// The asset kind carried by each arc (indexed by arc id).
    pub arc_kinds: Vec<AssetKind>,
}

impl ClearedSwap {
    /// The protocol hint an execution layer reads off the cycle's shape:
    /// whether the §4.6 single-leader timeout protocol applies — exactly
    /// one elected leader whose removal leaves the followers acyclic
    /// (Lemma 4.13's precondition, the Figure 6 obstruction otherwise).
    ///
    /// Every simple trade cycle with one leader satisfies this, which makes
    /// cheap HTLC execution the common case for cleared books.
    pub fn single_leader_feasible(&self) -> bool {
        if self.spec.leaders.len() != 1 {
            return false;
        }
        let removed: BTreeSet<VertexId> = self.spec.leaders.iter().copied().collect();
        let followers = self.spec.digraph.delete_vertices(&removed);
        swap_digraph::fvs::find_cycle(&followers).is_none()
    }
}

/// Errors from [`ClearingService::clear`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClearError {
    /// Spec assembly failed for a matched cycle (should not happen for
    /// well-formed offers; surfaced rather than hidden).
    Build(BuildError),
}

impl fmt::Display for ClearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClearError::Build(e) => write!(f, "failed to assemble cleared swap: {e}"),
        }
    }
}

impl std::error::Error for ClearError {}

impl From<BuildError> for ClearError {
    fn from(e: BuildError) -> Self {
        ClearError::Build(e)
    }
}

/// Errors from [`ClearingService::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelError {
    /// No offer with that id was ever submitted.
    UnknownOffer(OfferId),
    /// The offer has left the `Open` state (matched, resolved, or already
    /// cancelled) and can no longer be withdrawn.
    NotOpen(OfferId, OfferStatus),
}

impl fmt::Display for CancelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelError::UnknownOffer(id) => write!(f, "unknown {id}"),
            CancelError::NotOpen(id, status) => {
                write!(f, "{id} cannot be cancelled: it is {status}")
            }
        }
    }
}

impl std::error::Error for CancelError {}

/// Errors from [`ClearingService::settle_swap`] /
/// [`ClearingService::refund_swap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleError {
    /// The swap id was never issued, or its offers were already resolved.
    UnknownSwap(SwapId),
    /// The offer id was never issued by this service (stale, foreign, or
    /// out of range).
    UnknownOffer(OfferId),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::UnknownSwap(id) => {
                write!(f, "{id} is unknown or already resolved")
            }
            LifecycleError::UnknownOffer(id) => {
                write!(f, "{id} was never issued by this service")
            }
        }
    }
}

impl std::error::Error for LifecycleError {}

/// One offer plus its lifecycle state.
#[derive(Debug, Clone)]
struct OfferEntry {
    offer: Offer,
    status: OfferStatus,
}

/// The (untrusted) market-clearing service.
///
/// # Example
///
/// ```
/// use swap_crypto::{MssKeypair, Secret};
/// use swap_market::{AssetKind, ClearingService, Offer, OfferStatus};
/// use swap_sim::{Delta, SimTime};
///
/// let mut svc = ClearingService::new();
/// // Alice: altcoin → wants cadillac; Bob: btc → wants altcoin;
/// // Carol: cadillac → wants btc. One 3-cycle clears.
/// for (i, (gives, wants)) in [("altcoin", "cadillac"), ("btc", "altcoin"), ("cadillac", "btc")]
///     .iter()
///     .enumerate()
/// {
///     let kp = MssKeypair::from_seed_with_height([i as u8 + 1; 32], 2);
///     let s = Secret::from_bytes([i as u8 + 10; 32]);
///     svc.submit(Offer {
///         key: kp.public_key(),
///         hashlock: s.hashlock(),
///         gives: AssetKind::new(*gives),
///         wants: AssetKind::new(*wants),
///     });
/// }
/// let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
/// assert_eq!(swaps.len(), 1);
/// assert_eq!(swaps[0].spec.digraph.vertex_count(), 3);
/// // The epoch *consumed* the matched offers: they are in `Matched` now
/// // and a second clearing finds an empty book.
/// assert!(matches!(svc.status(swaps[0].offer_of_vertex[0]), Some(OfferStatus::Matched { .. })));
/// assert!(svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClearingService {
    entries: Vec<OfferEntry>,
    leader_strategy: LeaderStrategy,
    /// The next epoch number `clear` will run as.
    epoch: u64,
    /// The next swap id to issue.
    next_swap: u64,
    /// Offers of every matched-but-unresolved swap.
    in_flight: BTreeMap<SwapId, Vec<OfferId>>,
    /// The `Open` offers (ascending id = submission order), so an epoch
    /// costs O(open book), not O(every offer ever submitted).
    open: BTreeSet<OfferId>,
    /// Open offers the most recent clearing *skipped* because their party
    /// was reserved by an in-flight swap (see
    /// [`ClearingService::any_deferred_from`]). Cleared when the offer is
    /// matched, cancelled, or seen unreserved by a later clearing.
    deferred: BTreeSet<OfferId>,
}

impl ClearingService {
    /// Creates an empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the leader-election strategy for cleared swaps.
    pub fn with_leader_strategy(mut self, strategy: LeaderStrategy) -> Self {
        self.leader_strategy = strategy;
        self
    }

    /// Accepts an offer, returning its id. The offer starts `Open`.
    pub fn submit(&mut self, offer: Offer) -> OfferId {
        self.entries.push(OfferEntry { offer, status: OfferStatus::Open });
        let id = OfferId(self.entries.len() as u64 - 1);
        self.open.insert(id);
        id
    }

    /// The dense `entries` index of `id`, checked: stale or foreign ids
    /// (and ids whose raw value does not fit `usize` on narrow targets,
    /// where a bare `as usize` cast would silently truncate) yield
    /// [`LifecycleError::UnknownOffer`] instead of an indexing panic.
    /// Every offer-id lookup in the service funnels through here.
    fn entry_index(&self, id: OfferId) -> Result<usize, LifecycleError> {
        usize::try_from(id.0)
            .ok()
            .filter(|&i| i < self.entries.len())
            .ok_or(LifecycleError::UnknownOffer(id))
    }

    /// The entry for `id`, checked (see [`Self::entry_index`]).
    fn entry(&self, id: OfferId) -> Result<&OfferEntry, LifecycleError> {
        self.entry_index(id).map(|i| &self.entries[i])
    }

    /// Withdraws an `Open` offer. A cancelled offer can never be matched by
    /// any later epoch.
    ///
    /// # Errors
    ///
    /// [`CancelError::UnknownOffer`] for ids never issued;
    /// [`CancelError::NotOpen`] once the offer has been matched, resolved,
    /// or already cancelled.
    pub fn cancel(&mut self, id: OfferId) -> Result<(), CancelError> {
        let i = self.entry_index(id).map_err(|_| CancelError::UnknownOffer(id))?;
        match self.entries[i].status {
            OfferStatus::Open => {
                self.entries[i].status = OfferStatus::Cancelled;
                self.open.remove(&id);
                self.deferred.remove(&id);
                Ok(())
            }
            status => Err(CancelError::NotOpen(id, status)),
        }
    }

    /// The offer with the given id.
    pub fn offer(&self, id: OfferId) -> Option<&Offer> {
        self.entry(id).ok().map(|e| &e.offer)
    }

    /// The lifecycle status of the offer with the given id.
    pub fn status(&self, id: OfferId) -> Option<OfferStatus> {
        self.entry(id).ok().map(|e| e.status)
    }

    /// Number of submitted offers (any status).
    pub fn offer_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of offers currently `Open` (the next epoch's book).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// The epoch number the next [`clear`](Self::clear) call will run as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The offers of a matched-but-unresolved swap, in vertex order.
    pub fn offers_of_swap(&self, swap: SwapId) -> Option<&[OfferId]> {
        self.in_flight.get(&swap).map(Vec::as_slice)
    }

    /// Marks every offer of `swap` as `Settled` and retires the swap.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnknownSwap`] if the id was never issued or the
    /// swap was already resolved.
    pub fn settle_swap(&mut self, swap: SwapId) -> Result<(), LifecycleError> {
        self.resolve_swap(swap, OfferStatus::Settled)
    }

    /// Marks every offer of `swap` as `Refunded` and retires the swap.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnknownSwap`] if the id was never issued or the
    /// swap was already resolved.
    pub fn refund_swap(&mut self, swap: SwapId) -> Result<(), LifecycleError> {
        self.resolve_swap(swap, OfferStatus::Refunded)
    }

    fn resolve_swap(&mut self, swap: SwapId, terminal: OfferStatus) -> Result<(), LifecycleError> {
        let offers = self.in_flight.get(&swap).ok_or(LifecycleError::UnknownSwap(swap))?;
        // Validate every id before committing anything: in-flight ids are
        // internally issued and always valid, but a corrupted one must not
        // leave the resolution half-applied.
        let indices: Result<Vec<usize>, LifecycleError> =
            offers.iter().map(|&id| self.entry_index(id)).collect();
        let indices = indices?;
        self.in_flight.remove(&swap);
        for i in indices {
            self.entries[i].status = terminal;
        }
        Ok(())
    }

    /// The addresses locked by in-flight (matched-but-unresolved) swaps.
    /// Clearing never matches an `Open` offer whose party address is in
    /// this set: a party already driving an in-flight protocol run cannot
    /// commit its key material to a second concurrent swap. Its open
    /// offers simply roll over until the in-flight swap settles or refunds.
    pub fn reserved_addresses(&self) -> BTreeSet<Address> {
        self.in_flight
            .values()
            .flat_map(|offers| offers.iter())
            .filter_map(|&oid| self.entry(oid).ok())
            .map(|e| e.offer.key.address())
            .collect()
    }

    /// True if any currently `Open` offer of one of `addresses` was
    /// skipped by a clearing while its party was reserved. An execution
    /// layer checks this when a swap resolves: releasing a reservation
    /// makes exactly these deferred offers matchable again, so the book
    /// deserves another clearing pass — whereas ordinary unmatched
    /// leftovers (no counterparty) do not warrant one.
    pub fn any_deferred_from(&self, addresses: &BTreeSet<Address>) -> bool {
        self.deferred.iter().any(|&id| {
            self.entry(id).is_ok_and(|entry| {
                matches!(entry.status, OfferStatus::Open)
                    && addresses.contains(&entry.offer.key.address())
            })
        })
    }

    /// Runs one clearing epoch: matches the `Open` offers into disjoint
    /// trade cycles and publishes one [`ClearedSwap`] per cycle. Every
    /// matched offer transitions to [`OfferStatus::Matched`] and is
    /// *consumed* — later epochs can never re-match it. Unmatched offers
    /// stay `Open` for the next epoch.
    ///
    /// Clearing runs against the *reservation set* of in-flight parties
    /// ([`reserved_addresses`](Self::reserved_addresses)): an open offer
    /// whose key is already committed to a matched-but-unresolved swap is
    /// skipped this epoch and rolls over. This is what lets an execution
    /// layer clear epoch `k+1` while epoch `k` is still executing. The
    /// same invariant holds *within* an epoch: cleared cycles are
    /// party-disjoint by address — a party with several open offers gets
    /// at most one matched per clearing (the rest are deferred like
    /// reservation skips), and no cycle binds one address to two of its
    /// vertices.
    ///
    /// The matching is greedy FIFO per asset kind: the first submitted open
    /// demand for kind `k` is paired with the first open unmatched supply
    /// of `k`. Deterministic, order-sensitive, and O(n) — richer strategies
    /// (maximum-cycle-cover) belong to the clearing literature the paper
    /// cites, not to the swap protocol itself. Under
    /// [`LeaderStrategy::PreferSingleLeader`] the service additionally
    /// pairs off mutual two-party trades first and keeps that decomposition
    /// whenever it matches at least as many offers as plain FIFO: shorter
    /// cycles carry strictly smaller §4.6 timeout ladders, so ties between
    /// decompositions resolve toward the cheapest single-leader cycles.
    ///
    /// The start time of every published spec is `now + Δ` ("at least Δ in
    /// the future").
    ///
    /// # Errors
    ///
    /// Propagates spec-assembly failures (which indicate malformed offers,
    /// e.g. duplicate keys). On error no offer changes status and the epoch
    /// number does not advance.
    pub fn clear(&mut self, delta: Delta, now: SimTime) -> Result<Vec<ClearedSwap>, ClearError> {
        // Dense view of the open book in submission order, minus the
        // reservation set: an epoch costs O(open book), however many
        // resolved entries history holds.
        let reserved = self.reserved_addresses();
        let mut open_idx: Vec<usize> = Vec::with_capacity(self.open.len());
        let mut skipped: Vec<OfferId> = Vec::new();
        for &id in &self.open {
            let i = self.entry_index(id).expect("open offers were issued by this service");
            if !reserved.is_empty() && reserved.contains(&self.entries[i].offer.key.address()) {
                skipped.push(id);
            } else {
                open_idx.push(i);
            }
        }
        let cycles = match self.leader_strategy {
            LeaderStrategy::PreferSingleLeader => self.biased_cycles(&open_idx),
            _ => self.fifo_cycles(&open_idx),
        };
        // One party, one concurrent swap: accept cycles in order, rejecting
        // any whose party address this epoch already committed — or that
        // binds the same address to two of its own vertices (one keypair
        // cannot drive two protocol roles at once). Rejected cycles' offers
        // are *deferred* exactly like reservation skips: they stay open,
        // and the blocking swap's resolution wakes the book for them.
        let mut epoch_addresses: BTreeSet<Address> = BTreeSet::new();
        let mut selected: Vec<Vec<usize>> = Vec::with_capacity(cycles.len());
        for cycle in cycles {
            let addrs: Vec<Address> =
                cycle.iter().map(|&i| self.entries[i].offer.key.address()).collect();
            let disjoint = addrs.iter().all(|a| !epoch_addresses.contains(a))
                && addrs.iter().collect::<BTreeSet<_>>().len() == addrs.len();
            if disjoint {
                epoch_addresses.extend(addrs);
                selected.push(cycle);
            } else {
                skipped.extend(cycle.iter().map(|&i| OfferId(i as u64)));
            }
        }
        // Assemble every spec before mutating any lifecycle state, so a
        // build failure leaves the book untouched.
        let epoch = self.epoch;
        let mut swaps = Vec::with_capacity(selected.len());
        for (k, cycle) in selected.iter().enumerate() {
            let id = SwapId(self.next_swap + k as u64);
            swaps.push(self.assemble(id, epoch, cycle, delta, now)?);
        }
        // Commit: the offers this clearing actually considered leave the
        // deferred set, then the skipped ones (reservation skips and
        // rejected cycles) enter it, and the matched offers are consumed.
        for &i in &open_idx {
            self.deferred.remove(&OfferId(i as u64));
        }
        for id in skipped {
            self.deferred.insert(id);
        }
        for swap in &swaps {
            for &oid in &swap.offer_of_vertex {
                let i = self.entry_index(oid).expect("cleared offers were issued by this service");
                self.entries[i].status = OfferStatus::Matched { epoch, swap: swap.id };
                self.open.remove(&oid);
            }
            self.in_flight.insert(swap.id, swap.offer_of_vertex.clone());
        }
        self.next_swap += swaps.len() as u64;
        self.epoch += 1;
        Ok(swaps)
    }

    /// Greedy FIFO matching over the given entry indices (submission
    /// order): pairs each demand with the earliest unmatched supply of the
    /// wanted kind and walks the resulting permutation's cycles. Returns
    /// cycles of *entry* indices.
    fn fifo_cycles(&self, idx: &[usize]) -> Vec<Vec<usize>> {
        let m = idx.len();
        // supply[kind] = queue of dense positions giving that kind.
        let mut supply: BTreeMap<&AssetKind, VecDeque<usize>> = BTreeMap::new();
        for (pos, &i) in idx.iter().enumerate() {
            supply.entry(&self.entries[i].offer.gives).or_default().push_back(pos);
        }
        // successor[pos] = dense position receiving pos's asset.
        let mut successor: Vec<Option<usize>> = vec![None; m];
        let mut has_supplier = vec![false; m];
        for (pos, &i) in idx.iter().enumerate() {
            if let Some(queue) = supply.get_mut(&self.entries[i].offer.wants) {
                if let Some(giver) = queue.pop_front() {
                    successor[giver] = Some(pos);
                    has_supplier[pos] = true;
                }
            }
        }
        // An offer participates only if it both gives to someone and
        // receives from someone; walk permutation cycles among those.
        let mut visited = vec![false; m];
        let mut cycles: Vec<Vec<usize>> = Vec::new();
        for start in 0..m {
            if visited[start] || successor[start].is_none() || !has_supplier[start] {
                continue;
            }
            // Trace the cycle; bail if it wanders into non-participants.
            let mut cycle = vec![start];
            visited[start] = true;
            let mut cur = successor[start].expect("checked above");
            let mut closed = false;
            while !visited[cur] {
                visited[cur] = true;
                cycle.push(cur);
                match successor[cur] {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            if cur == start {
                closed = true;
            }
            if !closed || cycle.len() < 2 {
                continue;
            }
            cycles.push(cycle.into_iter().map(|pos| idx[pos]).collect());
        }
        cycles
    }

    /// The [`LeaderStrategy::PreferSingleLeader`] decomposition: pair off
    /// mutual two-party trades first (earliest counter-offer wins), then
    /// run plain FIFO on the remainder — and keep the biased decomposition
    /// only when it matches at least as many offers as plain FIFO would.
    /// Two-party cycles have the smallest possible diameter, hence the
    /// smallest Lemma 4.13 timeout ladders, so when decompositions tie this
    /// picks the one that is strictly cheapest under the §4.6 single-leader
    /// protocol.
    fn biased_cycles(&self, idx: &[usize]) -> Vec<Vec<usize>> {
        let m = idx.len();
        // by_trade[(gives, wants)] = dense positions offering that trade.
        let mut by_trade: BTreeMap<(&AssetKind, &AssetKind), VecDeque<usize>> = BTreeMap::new();
        for (pos, &i) in idx.iter().enumerate() {
            let offer = &self.entries[i].offer;
            by_trade.entry((&offer.gives, &offer.wants)).or_default().push_back(pos);
        }
        let mut paired = vec![false; m];
        let mut pairs: Vec<Vec<usize>> = Vec::new();
        for pos in 0..m {
            if paired[pos] {
                continue;
            }
            let offer = &self.entries[idx[pos]].offer;
            if offer.gives == offer.wants {
                continue;
            }
            if let Some(counters) = by_trade.get_mut(&(&offer.wants, &offer.gives)) {
                while let Some(&cand) = counters.front() {
                    if paired[cand] {
                        counters.pop_front();
                        continue;
                    }
                    paired[pos] = true;
                    paired[cand] = true;
                    counters.pop_front();
                    pairs.push(vec![idx[pos], idx[cand]]);
                    break;
                }
            }
        }
        let rest: Vec<usize> = (0..m).filter(|&pos| !paired[pos]).map(|pos| idx[pos]).collect();
        let mut biased = pairs;
        biased.extend(self.fifo_cycles(&rest));
        let plain = self.fifo_cycles(idx);
        let matched = |cycles: &[Vec<usize>]| cycles.iter().map(Vec::len).sum::<usize>();
        // Only bias between *tied* decompositions: pairing off a two-cycle
        // that plain FIFO would have woven into a larger cycle must never
        // cost the book liquidity.
        if matched(&biased) >= matched(&plain) {
            biased
        } else {
            plain
        }
    }

    /// Builds the digraph and spec for one cleared cycle of offer indices.
    fn assemble(
        &self,
        id: SwapId,
        epoch: u64,
        cycle: &[usize],
        delta: Delta,
        now: SimTime,
    ) -> Result<ClearedSwap, ClearError> {
        let mut digraph = Digraph::new();
        for &i in cycle {
            digraph.add_vertex(format!("offer{i}"));
        }
        let k = cycle.len();
        let mut arc_kinds = Vec::with_capacity(k);
        for (pos, &offer_idx) in cycle.iter().enumerate() {
            let head = VertexId::new(pos as u32);
            let tail = VertexId::new(((pos + 1) % k) as u32);
            digraph.add_arc(head, tail).expect("cycle arcs valid");
            arc_kinds.push(self.entries[offer_idx].offer.gives.clone());
        }
        let mut builder = SpecBuilder::new(digraph);
        builder.delta(delta).start(now + delta.times(1)).leader_strategy(self.leader_strategy);
        for (pos, &i) in cycle.iter().enumerate() {
            let offer = &self.entries[i].offer;
            builder.identity(VertexId::new(pos as u32), offer.key, offer.hashlock);
        }
        let spec = builder.build()?;
        Ok(ClearedSwap {
            id,
            epoch,
            spec,
            offer_of_vertex: cycle.iter().map(|&i| OfferId(i as u64)).collect(),
            arc_kinds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_crypto::{MssKeypair, Secret};

    fn offer(seed: u8, gives: &str, wants: &str) -> Offer {
        let kp = MssKeypair::from_seed_with_height([seed; 32], 2);
        Offer {
            key: kp.public_key(),
            hashlock: Secret::from_bytes([seed + 100; 32]).hashlock(),
            gives: AssetKind::new(gives),
            wants: AssetKind::new(wants),
        }
    }

    fn clear(svc: &mut ClearingService) -> Vec<ClearedSwap> {
        svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap()
    }

    #[test]
    fn three_way_cycle_clears() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "altcoin", "cadillac"));
        svc.submit(offer(2, "btc", "altcoin"));
        svc.submit(offer(3, "cadillac", "btc"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 1);
        let swap = &swaps[0];
        assert_eq!(swap.spec.digraph.vertex_count(), 3);
        assert_eq!(swap.spec.digraph.arc_count(), 3);
        assert!(swap.spec.digraph.is_strongly_connected());
        swap.spec.validate().unwrap();
        // Start at least Δ in the future.
        assert!(swap.spec.start >= SimTime::ZERO + Delta::from_ticks(10).times(1));
        // Arc kinds follow the givers around the cycle.
        assert_eq!(swap.arc_kinds.len(), 3);
        assert_eq!(swap.epoch, 0);
    }

    #[test]
    fn two_way_swap_clears() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "eth"));
        svc.submit(offer(2, "eth", "btc"));
        let swaps = svc.clear(Delta::from_ticks(5), SimTime::from_ticks(100)).unwrap();
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].spec.digraph.vertex_count(), 2);
        assert_eq!(swaps[0].spec.leaders.len(), 1);
    }

    #[test]
    fn disjoint_cycles_clear_separately() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "a", "b"));
        svc.submit(offer(2, "b", "a"));
        svc.submit(offer(3, "x", "y"));
        svc.submit(offer(4, "y", "z"));
        svc.submit(offer(5, "z", "x"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 2);
        let sizes: Vec<usize> = swaps.iter().map(|s| s.spec.digraph.vertex_count()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&3));
        // Swap ids are distinct and issued in order.
        assert_ne!(swaps[0].id, swaps[1].id);
    }

    #[test]
    fn unmatched_offers_left_open() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "eth"));
        svc.submit(offer(2, "eth", "btc"));
        let straggler = svc.submit(offer(3, "doge", "btc")); // nobody wants doge
        let swaps = clear(&mut svc);
        // The btc/eth pair clears; doge cannot.
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].spec.digraph.vertex_count(), 2);
        assert_eq!(svc.offer_count(), 3);
        assert_eq!(svc.status(straggler), Some(OfferStatus::Open));
        assert_eq!(svc.open_count(), 1);
    }

    #[test]
    fn no_offers_no_swaps() {
        let mut svc = ClearingService::new();
        assert!(clear(&mut svc).is_empty());
    }

    #[test]
    fn foreign_offer_ids_are_rejected_not_panicking() {
        // A stale or foreign id — including one far past the entry table,
        // where the historical `id.0 as usize` indexing panicked — answers
        // through every lookup surface without panicking.
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "eth"));
        for bogus in [OfferId(1), OfferId(999), OfferId(u64::MAX)] {
            assert_eq!(svc.offer(bogus).map(|o| o.gives.clone()), None, "{bogus}");
            assert_eq!(svc.status(bogus), None, "{bogus}");
            assert_eq!(svc.cancel(bogus), Err(CancelError::UnknownOffer(bogus)));
        }
        // The one real offer is untouched by the probing.
        assert_eq!(svc.status(OfferId(0)), Some(OfferStatus::Open));
        assert_eq!(svc.open_count(), 1);
    }

    #[test]
    fn self_satisfying_offer_not_a_swap() {
        // A party giving and wanting the same kind would form a self-loop;
        // cycles of length 1 are rejected.
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "btc"));
        assert!(clear(&mut svc).is_empty());
    }

    #[test]
    fn offer_of_vertex_maps_back() {
        let mut svc = ClearingService::new();
        let id0 = svc.submit(offer(1, "a", "b"));
        let id1 = svc.submit(offer(2, "b", "a"));
        let swaps = clear(&mut svc);
        let cleared = &swaps[0];
        assert_eq!(cleared.offer_of_vertex.len(), 2);
        assert!(cleared.offer_of_vertex.contains(&id0));
        assert!(cleared.offer_of_vertex.contains(&id1));
        // Vertex identities match the offers' keys.
        for (pos, oid) in cleared.offer_of_vertex.iter().enumerate() {
            let o = svc.offer(*oid).unwrap();
            assert_eq!(cleared.spec.keys[pos], o.key);
        }
    }

    #[test]
    fn clearing_is_deterministic_across_services() {
        let build = || {
            let mut svc = ClearingService::new();
            for i in 0..4 {
                svc.submit(offer(i + 1, &format!("k{i}"), &format!("k{}", (i + 1) % 4)));
            }
            svc
        };
        let a = clear(&mut build());
        let b = clear(&mut build());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn epoch_clearing_consumes_matched_offers() {
        // The old `clear(&self)` re-matched the same offers on every call;
        // epoch clearing must hand them out exactly once.
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        let first = clear(&mut svc);
        assert_eq!(first.len(), 1);
        let swap = first[0].id;
        assert_eq!(svc.status(a), Some(OfferStatus::Matched { epoch: 0, swap }));
        assert_eq!(svc.status(b), Some(OfferStatus::Matched { epoch: 0, swap }));
        // Second epoch: the book is empty, nothing re-matches.
        assert!(clear(&mut svc).is_empty());
        assert_eq!(svc.epoch(), 2);
        assert_eq!(svc.open_count(), 0);
    }

    #[test]
    fn later_epoch_matches_new_offers_with_leftovers() {
        let mut svc = ClearingService::new();
        let straggler = svc.submit(offer(1, "gbp", "usd"));
        assert!(clear(&mut svc).is_empty());
        // A counterparty arrives in the next epoch.
        let late = svc.submit(offer(2, "usd", "gbp"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].epoch, 1);
        assert!(swaps[0].offer_of_vertex.contains(&straggler));
        assert!(swaps[0].offer_of_vertex.contains(&late));
    }

    #[test]
    fn cancelled_offer_never_matches() {
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        svc.cancel(a).unwrap();
        assert_eq!(svc.status(a), Some(OfferStatus::Cancelled));
        // b's only counterparty is gone: no cycle forms, this epoch or any
        // later one.
        assert!(clear(&mut svc).is_empty());
        assert!(clear(&mut svc).is_empty());
        assert_eq!(svc.status(b), Some(OfferStatus::Open));
    }

    #[test]
    fn cancel_rejects_non_open_offers() {
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        let swaps = clear(&mut svc);
        let swap = swaps[0].id;
        assert_eq!(
            svc.cancel(a),
            Err(CancelError::NotOpen(a, OfferStatus::Matched { epoch: 0, swap }))
        );
        svc.cancel(b).unwrap_err();
        assert_eq!(svc.cancel(OfferId(99)), Err(CancelError::UnknownOffer(OfferId(99))));
        // Double-cancel is also rejected.
        let c = svc.submit(offer(3, "p", "q"));
        svc.cancel(c).unwrap();
        assert_eq!(svc.cancel(c), Err(CancelError::NotOpen(c, OfferStatus::Cancelled)));
    }

    #[test]
    fn settle_and_refund_resolve_the_lifecycle() {
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        let p = svc.submit(offer(3, "s", "t"));
        let q = svc.submit(offer(4, "t", "s"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 2);
        let (first, second) = (swaps[0].id, swaps[1].id);
        assert_eq!(svc.offers_of_swap(first), Some(swaps[0].offer_of_vertex.as_slice()));
        svc.settle_swap(first).unwrap();
        svc.refund_swap(second).unwrap();
        assert_eq!(svc.status(a), Some(OfferStatus::Settled));
        assert_eq!(svc.status(b), Some(OfferStatus::Settled));
        assert_eq!(svc.status(p), Some(OfferStatus::Refunded));
        assert_eq!(svc.status(q), Some(OfferStatus::Refunded));
        // Resolution is one-shot.
        assert_eq!(svc.settle_swap(first), Err(LifecycleError::UnknownSwap(first)));
        assert_eq!(svc.refund_swap(second), Err(LifecycleError::UnknownSwap(second)));
        assert!(svc.offers_of_swap(first).is_none());
    }

    #[test]
    fn prefer_single_leader_biases_tied_decompositions() {
        // This book admits two decompositions that tie at 4 matched offers:
        // one 4-cycle (what plain FIFO weaves, in this submission order) or
        // two 2-cycles. The biased strategy must pick the 2-cycles: same
        // liquidity, strictly smaller timeout ladders under §4.6.
        let book = [("a", "b"), ("b", "c"), ("c", "b"), ("b", "a")];
        let submit = |svc: &mut ClearingService| {
            for (i, (g, w)) in book.iter().enumerate() {
                svc.submit(offer(i as u8 + 1, g, w));
            }
        };

        let mut plain = ClearingService::new();
        submit(&mut plain);
        let plain_swaps = clear(&mut plain);
        assert_eq!(plain_swaps.len(), 1);
        assert_eq!(plain_swaps[0].spec.digraph.vertex_count(), 4);

        let mut biased =
            ClearingService::new().with_leader_strategy(LeaderStrategy::PreferSingleLeader);
        submit(&mut biased);
        let biased_swaps = clear(&mut biased);
        assert_eq!(biased_swaps.len(), 2, "bias decomposes into two 2-cycles");
        let matched: usize = biased_swaps.iter().map(|s| s.offer_of_vertex.len()).sum();
        assert_eq!(matched, 4, "the decompositions tie on matched offers");
        for swap in &biased_swaps {
            assert_eq!(swap.spec.digraph.vertex_count(), 2);
            assert!(swap.single_leader_feasible());
            // The §4.6 cost of the shorter cycles is strictly lower.
            assert!(
                swap.spec.worst_case_duration() < plain_swaps[0].spec.worst_case_duration(),
                "2-cycle ladder must undercut the 4-cycle ladder"
            );
        }
    }

    #[test]
    fn bias_never_reduces_matched_offers() {
        // Pairing (a→b, b→a) off would orphan the (b→c, c→a) tail: plain
        // FIFO matches 3 offers into a 3-cycle, the pairs-first split only
        // 2. The decompositions do NOT tie, so the bias must fall back.
        let book = [("a", "b"), ("b", "c"), ("c", "a"), ("b", "a")];
        for strategy in [LeaderStrategy::MinimumExact, LeaderStrategy::PreferSingleLeader] {
            let mut svc = ClearingService::new().with_leader_strategy(strategy);
            for (i, (g, w)) in book.iter().enumerate() {
                svc.submit(offer(i as u8 + 1, g, w));
            }
            let swaps = clear(&mut svc);
            assert_eq!(swaps.len(), 1, "{strategy:?}");
            assert_eq!(swaps[0].spec.digraph.vertex_count(), 3, "{strategy:?}");
        }
    }

    #[test]
    fn in_flight_parties_are_reserved() {
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        let first = clear(&mut svc);
        assert_eq!(first.len(), 1);
        let in_flight = first[0].id;
        assert_eq!(svc.reserved_addresses().len(), 2);

        // The same party (same key, seed 1) returns with a fresh trade
        // while its first swap is still in flight; a counterparty is ready.
        let c = svc.submit(offer(1, "p", "q"));
        let d = svc.submit(offer(3, "q", "p"));
        // Before any clearing saw it, c is not (yet) deferred.
        assert!(!svc.any_deferred_from(&svc.reserved_addresses()));
        assert!(clear(&mut svc).is_empty(), "reserved party must not re-match in flight");
        assert_eq!(svc.status(a), Some(OfferStatus::Matched { epoch: 0, swap: in_flight }));
        assert_eq!(svc.status(b), Some(OfferStatus::Matched { epoch: 0, swap: in_flight }));
        assert_eq!(svc.status(c), Some(OfferStatus::Open));
        assert_eq!(svc.status(d), Some(OfferStatus::Open));
        // The clearing skipped c under the reservation: it is deferred (d,
        // merely unmatched for lack of a counterparty, is not).
        assert!(svc.any_deferred_from(&svc.reserved_addresses()));

        // Settlement releases the reservation; the rolled-over offers clear.
        svc.settle_swap(in_flight).unwrap();
        assert!(svc.reserved_addresses().is_empty());
        let next = clear(&mut svc);
        assert_eq!(next.len(), 1);
        assert!(next[0].offer_of_vertex.contains(&c));
        assert!(next[0].offer_of_vertex.contains(&d));
    }

    #[test]
    fn same_epoch_double_commit_rejected() {
        // One clearing must never match two offers of the same party into
        // two concurrent swaps (shared key material breaks the pooled
        // executor's party-disjointness). The second cycle is deferred and
        // clears after the first swap resolves.
        let mut svc = ClearingService::new();
        let a1 = svc.submit(offer(1, "x", "y"));
        let a2 = svc.submit(offer(1, "p", "q")); // same party as a1
        let b = svc.submit(offer(2, "y", "x"));
        let c = svc.submit(offer(3, "q", "p"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 1, "one concurrent swap per party");
        assert!(swaps[0].offer_of_vertex.contains(&a1));
        assert!(swaps[0].offer_of_vertex.contains(&b));
        assert_eq!(svc.status(a2), Some(OfferStatus::Open));
        assert_eq!(svc.status(c), Some(OfferStatus::Open));
        // The rejected cycle is deferred on the in-flight party, so the
        // swap's resolution is what re-opens the book for it.
        assert!(svc.any_deferred_from(&svc.reserved_addresses()));
        svc.settle_swap(swaps[0].id).unwrap();
        let next = clear(&mut svc);
        assert_eq!(next.len(), 1);
        assert!(next[0].offer_of_vertex.contains(&a2));
        assert!(next[0].offer_of_vertex.contains(&c));
    }

    #[test]
    fn self_cycle_through_one_party_rejected() {
        // Both sides of the trade belong to one keypair: the cycle would
        // bind the same address to two vertices, so it must not clear.
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(1, "y", "x"));
        assert!(clear(&mut svc).is_empty(), "one party cannot occupy two vertices");
        assert_eq!(svc.status(a), Some(OfferStatus::Open));
        assert_eq!(svc.status(b), Some(OfferStatus::Open));
    }

    #[test]
    fn larger_market_mixed_kinds() {
        let mut svc = ClearingService::new();
        // 4-cycle plus a 2-cycle plus two stragglers.
        svc.submit(offer(1, "a", "b"));
        svc.submit(offer(2, "b", "c"));
        svc.submit(offer(3, "c", "d"));
        svc.submit(offer(4, "d", "a"));
        svc.submit(offer(5, "p", "q"));
        svc.submit(offer(6, "q", "p"));
        svc.submit(offer(7, "zzz", "a")); // loses the race for kind "a"
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 2);
        let total: usize = swaps.iter().map(|s| s.spec.digraph.vertex_count()).sum();
        assert_eq!(total, 6);
        for s in &swaps {
            s.spec.validate().unwrap();
        }
        assert_eq!(svc.open_count(), 1);
    }
}
