//! Offer collection, the offer lifecycle, and epoch-based cycle clearing.
//!
//! The "clearing problem" — deciding *which* swaps to execute — is the
//! barter-exchange matching the paper cites (Kaplan; Abraham et al. for
//! kidney exchanges). This module implements the classic single-offer
//! variant: each party offers to give one asset kind and wants one asset
//! kind; the service matches gives to wants and decomposes the resulting
//! assignment into disjoint trade cycles, each of which becomes an atomic
//! swap instance.
//!
//! # Offer lifecycle
//!
//! Every submitted offer moves through a strict lifecycle:
//!
//! ```text
//! Open ──cancel()──────────────▶ Cancelled          (terminal)
//!   │
//!   └──clear()──▶ Matched { epoch, swap }
//!                    │
//!                    ├──settle_swap()──▶ Settled    (terminal)
//!                    └──refund_swap()──▶ Refunded   (terminal)
//! ```
//!
//! [`ClearingService::clear`] runs one *epoch*: it matches only the
//! currently [`OfferStatus::Open`] offers and consumes every offer it
//! matches — a matched offer can never be re-matched by a later epoch, and
//! a cancelled offer can never be matched at all. Unmatched offers stay
//! `Open` and roll into the next epoch's book.
//!
//! # The incremental clearing index
//!
//! Under the default [`ClearingMode::Indexed`], the service maintains
//! price-time FIFO buckets — per-`(gives, wants)` trade buckets plus
//! per-kind giver/wanter sets, all ordered by offer id (= submission
//! order) — on every `submit`/`cancel`/match/`settle_swap`/`refund_swap`
//! delta. A clearing epoch then touches only the *matchable* region of the
//! book: the kinds with both supply and demand (`active` kinds), with a
//! pair-match fast path that drains mutual two-party trades straight from
//! opposing bucket heads before the general cycle walk. Open offers whose
//! party is reserved by an in-flight swap are *parked* out of the index
//! and re-inserted when the swap resolves, so the reservation scan is
//! incremental too. An epoch over a million-offer book with a small
//! matchable churn region costs O(churn), not O(book).
//!
//! [`ClearingMode::FullRescan`] keeps the original rescan-everything
//! matcher as an executable reference: both modes produce byte-identical
//! [`ClearedSwap`] sequences for the same offer stream (pinned by property
//! tests), they differ only in how much work
//! ([`ClearStats::offers_examined`]) reaching that answer costs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};
use swap_contract::SwapSpec;
use swap_crypto::{Address, Hashlock, MssPublicKey};
use swap_digraph::{Digraph, VertexId};
use swap_sim::{Delta, SimTime};

use crate::builder::{BuildError, LeaderStrategy, SpecBuilder};

/// A label for a tradable asset category, e.g. `"btc"`, `"altcoin"`,
/// `"cadillac-title"`. Matching is exact on the label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AssetKind(pub String);

impl AssetKind {
    /// Creates a kind label.
    pub fn new(s: impl Into<String>) -> Self {
        AssetKind(s.into())
    }
}

impl fmt::Display for AssetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies a submitted offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OfferId(u64);

impl OfferId {
    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value (the durability-store path; ids
    /// are only meaningful against the service that issued them).
    pub const fn from_raw(raw: u64) -> Self {
        OfferId(raw)
    }
}

impl fmt::Display for OfferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offer{}", self.0)
    }
}

/// Identifies one cleared swap instance, unique across all epochs of a
/// [`ClearingService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwapId(u64);

impl SwapId {
    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value (the durability-store path; ids
    /// are only meaningful against the service that issued them).
    pub const fn from_raw(raw: u64) -> Self {
        SwapId(raw)
    }
}

impl fmt::Display for SwapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "swap{}", self.0)
    }
}

/// Where an offer currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferStatus {
    /// Submitted and available to the next clearing epoch.
    Open,
    /// Withdrawn by its party before it was matched (terminal).
    Cancelled,
    /// Matched into a cleared swap; awaiting execution.
    Matched {
        /// The epoch whose clearing matched the offer.
        epoch: u64,
        /// The swap instance the offer is part of.
        swap: SwapId,
    },
    /// The matched swap executed and every arc triggered (terminal).
    Settled,
    /// The matched swap executed but was torn down with refunds (terminal).
    Refunded,
}

impl fmt::Display for OfferStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfferStatus::Open => write!(f, "open"),
            OfferStatus::Cancelled => write!(f, "cancelled"),
            OfferStatus::Matched { epoch, swap } => {
                write!(f, "matched into {swap} at epoch {epoch}")
            }
            OfferStatus::Settled => write!(f, "settled"),
            OfferStatus::Refunded => write!(f, "refunded"),
        }
    }
}

/// What a party sends the clearing service (§4.2): its verification key,
/// its freshly generated hashlock, and the trade it is willing to make.
#[derive(Debug, Clone, PartialEq)]
pub struct Offer {
    /// The party's signature-verification key (address derives from it).
    pub key: MssPublicKey,
    /// The party's hashlock `H(s)` — every party sends one, whether or not
    /// it ends up a leader.
    pub hashlock: Hashlock,
    /// The asset kind this party will relinquish.
    pub gives: AssetKind,
    /// The asset kind this party demands.
    pub wants: AssetKind,
}

/// One cleared swap instance: the published spec plus the offer-level
/// bookkeeping parties need to re-verify it.
#[derive(Debug, Clone)]
pub struct ClearedSwap {
    /// The service-wide unique id of this swap instance.
    pub id: SwapId,
    /// The epoch whose clearing produced it.
    pub epoch: u64,
    /// The validated swap specification.
    pub spec: SwapSpec,
    /// Which offer each digraph vertex corresponds to.
    pub offer_of_vertex: Vec<OfferId>,
    /// The asset kind carried by each arc (indexed by arc id).
    pub arc_kinds: Vec<AssetKind>,
}

impl ClearedSwap {
    /// The protocol hint an execution layer reads off the cycle's shape:
    /// whether the §4.6 single-leader timeout protocol applies — exactly
    /// one elected leader whose removal leaves the followers acyclic
    /// (Lemma 4.13's precondition, the Figure 6 obstruction otherwise).
    ///
    /// Every simple trade cycle with one leader satisfies this, which makes
    /// cheap HTLC execution the common case for cleared books.
    pub fn single_leader_feasible(&self) -> bool {
        if self.spec.leaders.len() != 1 {
            return false;
        }
        let removed: BTreeSet<VertexId> = self.spec.leaders.iter().copied().collect();
        let followers = self.spec.digraph.delete_vertices(&removed);
        swap_digraph::fvs::find_cycle(&followers).is_none()
    }
}

/// Errors from [`ClearingService::clear`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClearError {
    /// Spec assembly failed for a matched cycle (should not happen for
    /// well-formed offers; surfaced rather than hidden).
    Build(BuildError),
}

impl fmt::Display for ClearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClearError::Build(e) => write!(f, "failed to assemble cleared swap: {e}"),
        }
    }
}

impl std::error::Error for ClearError {}

impl From<BuildError> for ClearError {
    fn from(e: BuildError) -> Self {
        ClearError::Build(e)
    }
}

/// Errors from [`ClearingService::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelError {
    /// No offer with that id was ever submitted.
    UnknownOffer(OfferId),
    /// The offer has left the `Open` state (matched, resolved, or already
    /// cancelled) and can no longer be withdrawn.
    NotOpen(OfferId, OfferStatus),
}

impl fmt::Display for CancelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelError::UnknownOffer(id) => write!(f, "unknown {id}"),
            CancelError::NotOpen(id, status) => {
                write!(f, "{id} cannot be cancelled: it is {status}")
            }
        }
    }
}

impl std::error::Error for CancelError {}

/// Errors from [`ClearingService::settle_swap`] /
/// [`ClearingService::refund_swap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleError {
    /// The swap id was never issued, or its offers were already resolved.
    UnknownSwap(SwapId),
    /// The offer id was never issued by this service (stale, foreign, or
    /// out of range).
    UnknownOffer(OfferId),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::UnknownSwap(id) => {
                write!(f, "{id} is unknown or already resolved")
            }
            LifecycleError::UnknownOffer(id) => {
                write!(f, "{id} was never issued by this service")
            }
        }
    }
}

impl std::error::Error for LifecycleError {}

/// How [`ClearingService`] finds trade cycles in the open book.
///
/// Both modes produce **byte-identical** [`ClearedSwap`] sequences for the
/// same offer/cancel/resolve stream (pinned by property tests); they
/// differ only in the work spent getting there, reported through
/// [`ClearStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ClearingMode {
    /// Match from the incrementally-maintained price-time index: only the
    /// kinds with both supply and demand are examined, mutual two-cycles
    /// drain from opposing bucket heads first, and reserved parties' offers
    /// are parked out of the index rather than re-filtered per epoch. An
    /// epoch costs O(matchable region), not O(open book).
    #[default]
    Indexed,
    /// The reference matcher: rescan the entire open book every epoch.
    /// O(open book) per clear; kept as the executable specification the
    /// indexed mode is equivalence-tested against.
    FullRescan,
}

impl fmt::Display for ClearingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClearingMode::Indexed => write!(f, "indexed"),
            ClearingMode::FullRescan => write!(f, "full-rescan"),
        }
    }
}

/// Measured work of one clearing epoch, attached to the [`ClearPlan`] and
/// retained as [`ClearingService::last_clear_stats`]. An execution layer
/// can derive *measured* stage costs from these instead of a synthetic
/// per-open-offer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClearStats {
    /// The mode that produced the plan.
    pub mode: ClearingMode,
    /// Open offers in the book when the plan was drawn (parked included).
    pub open_offers: u64,
    /// Offers the matcher actually examined: every open offer under
    /// [`ClearingMode::FullRescan`]; only the zip/pair steps over active
    /// kinds under [`ClearingMode::Indexed`]. This is the work proxy that
    /// separates the modes on large, mostly-unmatchable books.
    pub offers_examined: u64,
    /// Cycles selected for publication (after party-disjointness).
    pub cycles_emitted: u64,
    /// Offers matched into those cycles.
    pub offers_matched: u64,
    /// Offers the mutual-two-cycle fast path matched before general cycle
    /// search (counted pre-disjointness; nonzero only under
    /// [`ClearingMode::Indexed`] with [`LeaderStrategy::PreferSingleLeader`]
    /// when the biased decomposition wins the tie rule).
    pub pair_matched: u64,
}

/// An uncommitted clearing epoch: the cycles a [`ClearingService::plan`]
/// call selected plus the measured [`ClearStats`] of finding them.
///
/// The split exists so an execution layer can price the epoch (from the
/// stats) *before* publishing it — the publication instant feeds into every
/// spec's start time. Apply with [`ClearingService::commit`]; the book must
/// not change in between.
#[derive(Debug, Clone)]
pub struct ClearPlan {
    /// Party-disjoint cycles to publish, in emission order.
    selected: Vec<Vec<OfferId>>,
    /// Offers this clearing saw but skipped: reservation parks plus the
    /// members of cycles rejected by party-disjointness. These become the
    /// new deferred set on commit.
    skipped: Vec<OfferId>,
    stats: ClearStats,
    /// Staleness stamps: the epoch and offer count the plan was drawn at.
    epoch: u64,
    offers_seen: usize,
}

impl ClearPlan {
    /// The measured work of drawing this plan.
    pub fn stats(&self) -> &ClearStats {
        &self.stats
    }

    /// True if the plan publishes no swaps.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }
}

/// A durable image of a [`ClearingService`]: everything
/// [`restore`](ClearingService::restore) needs to rebuild the service — entries with
/// their lifecycle statuses, the id/epoch cursors, the deferred set, and
/// the in-flight swap membership.
///
/// Only *state* is captured, never the derived matching index: `restore`
/// rebuilds `open`, the reservation set (the union of in-flight parties),
/// the per-address fan-out, and the park/index split from these fields,
/// which keeps the snapshot format independent of index internals.
#[derive(Debug, Clone, PartialEq)]
pub struct BookSnapshot {
    /// Raw id of the first entry; entry `i` holds offer `first_id + i`.
    pub first_id: u64,
    /// The next epoch number.
    pub epoch: u64,
    /// The next swap id to issue.
    pub next_swap: u64,
    /// Every submitted offer with its status, in id order.
    pub entries: Vec<(Offer, OfferStatus)>,
    /// Offers skipped by the most recent committed clearing.
    pub deferred: Vec<OfferId>,
    /// Matched-but-unresolved swaps and their offers in vertex order.
    pub in_flight: Vec<(SwapId, Vec<OfferId>)>,
}

/// One offer plus its lifecycle state and cached identity.
#[derive(Debug, Clone)]
struct OfferEntry {
    offer: Offer,
    status: OfferStatus,
    /// The offer's public id. Distinct from the entry's position in
    /// `entries` whenever the service was built with
    /// [`ClearingService::with_first_offer_id`].
    id: OfferId,
    /// The party address, derived once at submission (hashing the key per
    /// lookup is measurable at book scale).
    address: Address,
}

/// The (untrusted) market-clearing service.
///
/// # Example
///
/// ```
/// use swap_crypto::{MssKeypair, Secret};
/// use swap_market::{AssetKind, ClearingService, Offer, OfferStatus};
/// use swap_sim::{Delta, SimTime};
///
/// let mut svc = ClearingService::new();
/// // Alice: altcoin → wants cadillac; Bob: btc → wants altcoin;
/// // Carol: cadillac → wants btc. One 3-cycle clears.
/// for (i, (gives, wants)) in [("altcoin", "cadillac"), ("btc", "altcoin"), ("cadillac", "btc")]
///     .iter()
///     .enumerate()
/// {
///     let kp = MssKeypair::from_seed_with_height([i as u8 + 1; 32], 2);
///     let s = Secret::from_bytes([i as u8 + 10; 32]);
///     svc.submit(Offer {
///         key: kp.public_key(),
///         hashlock: s.hashlock(),
///         gives: AssetKind::new(*gives),
///         wants: AssetKind::new(*wants),
///     });
/// }
/// let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
/// assert_eq!(swaps.len(), 1);
/// assert_eq!(swaps[0].spec.digraph.vertex_count(), 3);
/// // The epoch *consumed* the matched offers: they are in `Matched` now
/// // and a second clearing finds an empty book.
/// assert!(matches!(svc.status(swaps[0].offer_of_vertex[0]), Some(OfferStatus::Matched { .. })));
/// assert!(svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClearingService {
    entries: Vec<OfferEntry>,
    leader_strategy: LeaderStrategy,
    mode: ClearingMode,
    /// Raw id of the first offer this service issues; entry `i` holds
    /// offer `first_id + i`.
    first_id: u64,
    /// The next epoch number `clear` will run as.
    epoch: u64,
    /// The next swap id to issue.
    next_swap: u64,
    /// Offers of every matched-but-unresolved swap.
    in_flight: BTreeMap<SwapId, Vec<OfferId>>,
    /// The `Open` offers (ascending id = submission order), so an epoch
    /// costs O(open book), not O(every offer ever submitted).
    open: BTreeSet<OfferId>,
    /// Open offers the most recent clearing *skipped* because their party
    /// was reserved by an in-flight swap (see
    /// [`ClearingService::any_deferred_from`]). Cleared when the offer is
    /// matched, cancelled, or seen unreserved by a later clearing.
    deferred: BTreeSet<OfferId>,
    /// Addresses locked by in-flight swaps, maintained incrementally:
    /// inserted when a clearing commits a match, removed when the swap
    /// settles or refunds.
    reserved: BTreeSet<Address>,
    /// Open offers per party address (the park/unpark fan-out).
    by_address: BTreeMap<Address, BTreeSet<OfferId>>,
    /// Open offers *excluded* from the matching index because their party
    /// address is reserved. Invariant: `parked` is exactly the open offers
    /// whose address is in `reserved`.
    parked: BTreeSet<OfferId>,
    // ---- the matching index (open, unparked offers only) ----
    /// Price-time buckets: offers by exact `(gives, wants)` trade,
    /// id-ordered (= submission order, the FIFO "time" axis).
    by_trade: BTreeMap<(AssetKind, AssetKind), BTreeSet<OfferId>>,
    /// Offers giving each kind. Entries are never empty.
    givers: BTreeMap<AssetKind, BTreeSet<OfferId>>,
    /// Offers wanting each kind. Entries are never empty.
    wanters: BTreeMap<AssetKind, BTreeSet<OfferId>>,
    /// Kinds with both supply and demand — the only kinds a clearing epoch
    /// visits.
    active: BTreeSet<AssetKind>,
    /// Unordered kind pairs `{a, b}` (stored `a < b`) with offers in both
    /// the `(a, b)` and `(b, a)` buckets: the mutual-two-cycle fast path's
    /// work list.
    mutual: BTreeSet<(AssetKind, AssetKind)>,
    /// Stats of the most recent committed clearing.
    last_stats: Option<ClearStats>,
}

impl ClearingService {
    /// Creates an empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the leader-election strategy for cleared swaps.
    pub fn with_leader_strategy(mut self, strategy: LeaderStrategy) -> Self {
        self.leader_strategy = strategy;
        self
    }

    /// Selects how clearing epochs find trade cycles (default
    /// [`ClearingMode::Indexed`]).
    pub fn with_mode(mut self, mode: ClearingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Offsets the id space: the first submitted offer gets raw id `base`
    /// instead of `0`. Lets several services (shards) issue disjoint offer
    /// ids, and decouples offer ids from entry positions.
    ///
    /// # Panics
    ///
    /// If offers were already submitted.
    pub fn with_first_offer_id(mut self, base: u64) -> Self {
        assert!(self.entries.is_empty(), "id base must be set before the first submit");
        self.first_id = base;
        self
    }

    /// The mode clearing epochs run under.
    pub fn mode(&self) -> ClearingMode {
        self.mode
    }

    /// Accepts an offer, returning its id. The offer starts `Open`.
    pub fn submit(&mut self, offer: Offer) -> OfferId {
        let id = OfferId(self.first_id + self.entries.len() as u64);
        let address = offer.key.address();
        self.entries.push(OfferEntry { offer, status: OfferStatus::Open, id, address });
        self.open.insert(id);
        self.by_address.entry(address).or_default().insert(id);
        if self.reserved.contains(&address) {
            self.parked.insert(id);
        } else {
            self.index_insert(id);
        }
        id
    }

    /// The dense `entries` index of `id`, checked: stale or foreign ids
    /// (below the id base, past the entry table, or whose offset does not
    /// fit `usize` on narrow targets, where a bare cast would silently
    /// truncate) yield [`LifecycleError::UnknownOffer`] instead of an
    /// indexing panic. Every offer-id lookup in the service funnels
    /// through here.
    fn entry_index(&self, id: OfferId) -> Result<usize, LifecycleError> {
        id.0.checked_sub(self.first_id)
            .and_then(|off| usize::try_from(off).ok())
            .filter(|&i| i < self.entries.len())
            .ok_or(LifecycleError::UnknownOffer(id))
    }

    /// The entry for `id`, checked (see [`Self::entry_index`]).
    fn entry(&self, id: OfferId) -> Result<&OfferEntry, LifecycleError> {
        self.entry_index(id).map(|i| &self.entries[i])
    }

    /// Withdraws an `Open` offer. A cancelled offer can never be matched by
    /// any later epoch.
    ///
    /// # Errors
    ///
    /// [`CancelError::UnknownOffer`] for ids never issued;
    /// [`CancelError::NotOpen`] once the offer has been matched, resolved,
    /// or already cancelled.
    pub fn cancel(&mut self, id: OfferId) -> Result<(), CancelError> {
        let i = self.entry_index(id).map_err(|_| CancelError::UnknownOffer(id))?;
        match self.entries[i].status {
            OfferStatus::Open => {
                self.entries[i].status = OfferStatus::Cancelled;
                self.open.remove(&id);
                self.deferred.remove(&id);
                let address = self.entries[i].address;
                self.book_remove(id, &address);
                Ok(())
            }
            status => Err(CancelError::NotOpen(id, status)),
        }
    }

    /// The offer with the given id.
    pub fn offer(&self, id: OfferId) -> Option<&Offer> {
        self.entry(id).ok().map(|e| &e.offer)
    }

    /// The lifecycle status of the offer with the given id.
    pub fn status(&self, id: OfferId) -> Option<OfferStatus> {
        self.entry(id).ok().map(|e| e.status)
    }

    /// Number of submitted offers (any status).
    pub fn offer_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of offers currently `Open` (the next epoch's book).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// The epoch number the next [`clear`](Self::clear) call will run as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The offers of a matched-but-unresolved swap, in vertex order.
    pub fn offers_of_swap(&self, swap: SwapId) -> Option<&[OfferId]> {
        self.in_flight.get(&swap).map(Vec::as_slice)
    }

    /// Marks every offer of `swap` as `Settled` and retires the swap.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnknownSwap`] if the id was never issued or the
    /// swap was already resolved.
    pub fn settle_swap(&mut self, swap: SwapId) -> Result<(), LifecycleError> {
        self.resolve_swap(swap, OfferStatus::Settled)
    }

    /// Marks every offer of `swap` as `Refunded` and retires the swap.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnknownSwap`] if the id was never issued or the
    /// swap was already resolved.
    pub fn refund_swap(&mut self, swap: SwapId) -> Result<(), LifecycleError> {
        self.resolve_swap(swap, OfferStatus::Refunded)
    }

    fn resolve_swap(&mut self, swap: SwapId, terminal: OfferStatus) -> Result<(), LifecycleError> {
        let offers = self.in_flight.get(&swap).ok_or(LifecycleError::UnknownSwap(swap))?;
        // Validate every id before committing anything: in-flight ids are
        // internally issued and always valid, but a corrupted one must not
        // leave the resolution half-applied.
        let indices: Result<Vec<usize>, LifecycleError> =
            offers.iter().map(|&id| self.entry_index(id)).collect();
        let indices = indices?;
        self.in_flight.remove(&swap);
        for i in indices {
            self.entries[i].status = terminal;
            // Release the party's reservation and wake its parked offers
            // back into the matching index.
            let address = self.entries[i].address;
            self.reserved.remove(&address);
            self.unpark_address(&address);
        }
        Ok(())
    }

    /// The addresses locked by in-flight (matched-but-unresolved) swaps,
    /// maintained incrementally (inserted at match, removed at
    /// settle/refund) and returned by reference — no per-call rebuild.
    /// Clearing never matches an `Open` offer whose party address is in
    /// this set: a party already driving an in-flight protocol run cannot
    /// commit its key material to a second concurrent swap. Its open
    /// offers simply roll over until the in-flight swap settles or refunds.
    pub fn reserved_addresses(&self) -> &BTreeSet<Address> {
        &self.reserved
    }

    /// True if any currently `Open` offer of one of `addresses` was
    /// skipped by a clearing while its party was reserved. An execution
    /// layer checks this when a swap resolves: releasing a reservation
    /// makes exactly these deferred offers matchable again, so the book
    /// deserves another clearing pass — whereas ordinary unmatched
    /// leftovers (no counterparty) do not warrant one.
    pub fn any_deferred_from(&self, addresses: &BTreeSet<Address>) -> bool {
        self.deferred.iter().any(|&id| {
            self.entry(id).is_ok_and(|entry| {
                matches!(entry.status, OfferStatus::Open) && addresses.contains(&entry.address)
            })
        })
    }

    /// The measured work of the most recent committed clearing epoch.
    pub fn last_clear_stats(&self) -> Option<ClearStats> {
        self.last_stats
    }

    // ---- index maintenance ----

    /// Inserts an open, unreserved offer into the matching index.
    fn index_insert(&mut self, id: OfferId) {
        let i = self.entry_index(id).expect("indexed offers were issued by this service");
        let gives = self.entries[i].offer.gives.clone();
        let wants = self.entries[i].offer.wants.clone();
        self.by_trade.entry((gives.clone(), wants.clone())).or_default().insert(id);
        if gives != wants && self.by_trade.contains_key(&(wants.clone(), gives.clone())) {
            self.mutual.insert(Self::canon_pair(&gives, &wants));
        }
        self.givers.entry(gives.clone()).or_default().insert(id);
        if self.wanters.contains_key(&gives) {
            self.active.insert(gives.clone());
        }
        self.wanters.entry(wants.clone()).or_default().insert(id);
        if self.givers.contains_key(&wants) {
            self.active.insert(wants);
        }
    }

    /// Removes an offer from the matching index, pruning emptied buckets
    /// (so `contains_key` on `givers`/`wanters`/`by_trade` means
    /// non-empty).
    fn index_remove(&mut self, id: OfferId) {
        let i = self.entry_index(id).expect("indexed offers were issued by this service");
        let gives = self.entries[i].offer.gives.clone();
        let wants = self.entries[i].offer.wants.clone();
        if let Some(bucket) = self.by_trade.get_mut(&(gives.clone(), wants.clone())) {
            bucket.remove(&id);
            if bucket.is_empty() {
                self.by_trade.remove(&(gives.clone(), wants.clone()));
                if gives != wants {
                    self.mutual.remove(&Self::canon_pair(&gives, &wants));
                }
            }
        }
        if let Some(set) = self.givers.get_mut(&gives) {
            set.remove(&id);
            if set.is_empty() {
                self.givers.remove(&gives);
                self.active.remove(&gives);
            }
        }
        if let Some(set) = self.wanters.get_mut(&wants) {
            set.remove(&id);
            if set.is_empty() {
                self.wanters.remove(&wants);
                self.active.remove(&wants);
            }
        }
    }

    fn canon_pair(a: &AssetKind, b: &AssetKind) -> (AssetKind, AssetKind) {
        if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        }
    }

    /// Removes an offer leaving the open book (cancelled or matched) from
    /// the address fan-out and from wherever it lives — parked set or
    /// matching index.
    fn book_remove(&mut self, id: OfferId, address: &Address) {
        if let Some(set) = self.by_address.get_mut(address) {
            set.remove(&id);
            if set.is_empty() {
                self.by_address.remove(address);
            }
        }
        if !self.parked.remove(&id) {
            self.index_remove(id);
        }
    }

    /// Moves every open offer of `address` out of the matching index into
    /// the parked set (the address just became reserved).
    fn park_address(&mut self, address: &Address) {
        let ids: Vec<OfferId> =
            self.by_address.get(address).into_iter().flatten().copied().collect();
        for id in ids {
            if self.parked.insert(id) {
                self.index_remove(id);
            }
        }
    }

    /// Moves every parked offer of `address` back into the matching index
    /// (the address's reservation was just released). Id-ordered sets make
    /// re-insertion restore the exact FIFO position.
    fn unpark_address(&mut self, address: &Address) {
        let ids: Vec<OfferId> =
            self.by_address.get(address).into_iter().flatten().copied().collect();
        for id in ids {
            if self.parked.remove(&id) {
                self.index_insert(id);
            }
        }
    }

    // ---- planning ----

    /// Draws (without committing) one clearing epoch's plan: the
    /// party-disjoint cycles the current mode's matcher selects from the
    /// open book, plus the measured [`ClearStats`] of finding them. Apply
    /// with [`commit`](Self::commit); the book must not change in between.
    pub fn plan(&self) -> ClearPlan {
        match self.mode {
            ClearingMode::FullRescan => self.plan_full_rescan(),
            ClearingMode::Indexed => self.plan_indexed(),
        }
    }

    fn plan_full_rescan(&self) -> ClearPlan {
        // Dense view of the open book in submission order, minus the
        // reservation set.
        let mut open_idx: Vec<usize> = Vec::with_capacity(self.open.len());
        let mut skipped: Vec<OfferId> = Vec::new();
        for &id in &self.open {
            let i = self.entry_index(id).expect("open offers were issued by this service");
            if !self.reserved.is_empty() && self.reserved.contains(&self.entries[i].address) {
                skipped.push(id);
            } else {
                open_idx.push(i);
            }
        }
        let cycles = match self.leader_strategy {
            LeaderStrategy::PreferSingleLeader => self.biased_cycles(&open_idx),
            _ => self.fifo_cycles(&open_idx),
        };
        // Cycles of entry indices → cycles of real offer ids (the two
        // coincide only when the id base is 0).
        let cycles: Vec<Vec<OfferId>> = cycles
            .into_iter()
            .map(|cycle| cycle.into_iter().map(|i| self.entries[i].id).collect())
            .collect();
        let selected = self.select_disjoint(cycles, &mut skipped);
        self.finish_plan(ClearingMode::FullRescan, self.open.len() as u64, selected, skipped, 0)
    }

    fn plan_indexed(&self) -> ClearPlan {
        let mut examined = 0u64;
        let (cycles, pair_matched) = match self.leader_strategy {
            LeaderStrategy::PreferSingleLeader => self.indexed_biased(&mut examined),
            _ => (self.indexed_fifo(None, &mut examined), 0),
        };
        // Everything a full rescan would have skipped for reservation is,
        // by the park invariant, exactly the parked set.
        let mut skipped: Vec<OfferId> = self.parked.iter().copied().collect();
        let selected = self.select_disjoint(cycles, &mut skipped);
        self.finish_plan(ClearingMode::Indexed, examined, selected, skipped, pair_matched)
    }

    fn finish_plan(
        &self,
        mode: ClearingMode,
        offers_examined: u64,
        selected: Vec<Vec<OfferId>>,
        skipped: Vec<OfferId>,
        pair_matched: u64,
    ) -> ClearPlan {
        let stats = ClearStats {
            mode,
            open_offers: self.open.len() as u64,
            offers_examined,
            cycles_emitted: selected.len() as u64,
            offers_matched: selected.iter().map(|c| c.len() as u64).sum(),
            pair_matched,
        };
        ClearPlan { selected, skipped, stats, epoch: self.epoch, offers_seen: self.entries.len() }
    }

    /// One party, one concurrent swap: accept cycles in order, rejecting
    /// any whose party address this epoch already committed — or that
    /// binds the same address to two of its own vertices (one keypair
    /// cannot drive two protocol roles at once). Rejected cycles' offers
    /// are *deferred* exactly like reservation skips: they stay open,
    /// and the blocking swap's resolution wakes the book for them.
    fn select_disjoint(
        &self,
        cycles: Vec<Vec<OfferId>>,
        skipped: &mut Vec<OfferId>,
    ) -> Vec<Vec<OfferId>> {
        let mut epoch_addresses: BTreeSet<Address> = BTreeSet::new();
        let mut selected: Vec<Vec<OfferId>> = Vec::with_capacity(cycles.len());
        for cycle in cycles {
            let addrs: Vec<Address> = cycle
                .iter()
                .map(|&id| {
                    let i =
                        self.entry_index(id).expect("matched offers were issued by this service");
                    self.entries[i].address
                })
                .collect();
            let disjoint = addrs.iter().all(|a| !epoch_addresses.contains(a))
                && addrs.iter().collect::<BTreeSet<_>>().len() == addrs.len();
            if disjoint {
                epoch_addresses.extend(addrs);
                selected.push(cycle);
            } else {
                skipped.extend(cycle.iter().copied());
            }
        }
        selected
    }

    // ---- committing ----

    /// Publishes a plan drawn by [`plan`](Self::plan): assembles one
    /// [`ClearedSwap`] per selected cycle, consumes the matched offers,
    /// reserves their parties (parking any further open offers they have),
    /// replaces the deferred set with the plan's skips, and advances the
    /// epoch.
    ///
    /// The start time of every published spec is `now + Δ` ("at least Δ in
    /// the future").
    ///
    /// # Errors
    ///
    /// Propagates spec-assembly failures (which indicate malformed offers,
    /// e.g. duplicate keys). On error no offer changes status and the epoch
    /// number does not advance.
    ///
    /// # Panics
    ///
    /// Debug builds assert the book did not change between `plan` and
    /// `commit` (same epoch, same offer count); committing a stale plan in
    /// release builds is unspecified behavior at the bookkeeping level.
    pub fn commit(
        &mut self,
        plan: ClearPlan,
        delta: Delta,
        now: SimTime,
    ) -> Result<Vec<ClearedSwap>, ClearError> {
        debug_assert_eq!(plan.epoch, self.epoch, "plan committed against a different epoch");
        debug_assert_eq!(plan.offers_seen, self.entries.len(), "book changed since plan was drawn");
        // Assemble every spec before mutating any lifecycle state, so a
        // build failure leaves the book untouched.
        let epoch = self.epoch;
        let mut swaps = Vec::with_capacity(plan.selected.len());
        for (k, cycle) in plan.selected.iter().enumerate() {
            let id = SwapId(self.next_swap + k as u64);
            swaps.push(self.assemble(id, epoch, cycle, delta, now)?);
        }
        // Commit: this clearing considered every open offer, so the
        // deferred set becomes exactly what it skipped (reservation parks
        // and rejected cycles).
        self.deferred = plan.skipped.into_iter().collect();
        for swap in &swaps {
            let mut addresses = Vec::with_capacity(swap.offer_of_vertex.len());
            for &oid in &swap.offer_of_vertex {
                let i = self.entry_index(oid).expect("cleared offers were issued by this service");
                self.entries[i].status = OfferStatus::Matched { epoch, swap: swap.id };
                self.open.remove(&oid);
                let address = self.entries[i].address;
                self.book_remove(oid, &address);
                addresses.push(address);
            }
            for address in addresses {
                self.reserved.insert(address);
                self.park_address(&address);
            }
            self.in_flight.insert(swap.id, swap.offer_of_vertex.clone());
        }
        self.next_swap += swaps.len() as u64;
        self.epoch += 1;
        self.last_stats = Some(plan.stats);
        Ok(swaps)
    }

    /// Runs one clearing epoch: matches the `Open` offers into disjoint
    /// trade cycles and publishes one [`ClearedSwap`] per cycle. Every
    /// matched offer transitions to [`OfferStatus::Matched`] and is
    /// *consumed* — later epochs can never re-match it. Unmatched offers
    /// stay `Open` for the next epoch. Equivalent to
    /// [`plan`](Self::plan) + [`commit`](Self::commit); the split exists
    /// for callers that must price the epoch before publishing it.
    ///
    /// Clearing runs against the *reservation set* of in-flight parties
    /// ([`reserved_addresses`](Self::reserved_addresses)): an open offer
    /// whose key is already committed to a matched-but-unresolved swap is
    /// skipped this epoch and rolls over. This is what lets an execution
    /// layer clear epoch `k+1` while epoch `k` is still executing. The
    /// same invariant holds *within* an epoch: cleared cycles are
    /// party-disjoint by address — a party with several open offers gets
    /// at most one matched per clearing (the rest are deferred like
    /// reservation skips), and no cycle binds one address to two of its
    /// vertices.
    ///
    /// The matching is greedy FIFO per asset kind: the first submitted open
    /// demand for kind `k` is paired with the first open unmatched supply
    /// of `k`. Deterministic, order-sensitive, and O(n) — richer strategies
    /// (maximum-cycle-cover) belong to the clearing literature the paper
    /// cites, not to the swap protocol itself. Under
    /// [`LeaderStrategy::PreferSingleLeader`] the service additionally
    /// pairs off mutual two-party trades first and keeps that decomposition
    /// whenever it matches at least as many offers as plain FIFO: shorter
    /// cycles carry strictly smaller §4.6 timeout ladders, so ties between
    /// decompositions resolve toward the cheapest single-leader cycles.
    /// Under [`ClearingMode::Indexed`] (the default) the same answer is
    /// computed from the incremental index — see the module docs — with
    /// the mutual pairing served by the bucket-head fast path.
    ///
    /// # Errors
    ///
    /// Propagates spec-assembly failures (which indicate malformed offers,
    /// e.g. duplicate keys). On error no offer changes status and the epoch
    /// number does not advance.
    pub fn clear(&mut self, delta: Delta, now: SimTime) -> Result<Vec<ClearedSwap>, ClearError> {
        let plan = self.plan();
        self.commit(plan, delta, now)
    }

    // ---- indexed matchers ----

    /// Greedy FIFO matching from the index: for every *active* kind, zip
    /// the id-ordered givers against the id-ordered wanters (the i-th
    /// demand for a kind pairs with the i-th supply — exactly what the
    /// full-rescan queue matcher computes), then walk the resulting
    /// partial permutation's cycles from their smallest members upward.
    /// Offers in `exclude` are invisible. Each zip step counts one
    /// examined offer.
    fn indexed_fifo(
        &self,
        exclude: Option<&BTreeSet<OfferId>>,
        examined: &mut u64,
    ) -> Vec<Vec<OfferId>> {
        let excluded = |id: &OfferId| exclude.is_some_and(|set| set.contains(id));
        let mut succ: BTreeMap<OfferId, OfferId> = BTreeMap::new();
        let mut has_supplier: BTreeSet<OfferId> = BTreeSet::new();
        for kind in &self.active {
            let (Some(givers), Some(wanters)) = (self.givers.get(kind), self.wanters.get(kind))
            else {
                continue;
            };
            let mut give = givers.iter().filter(|id| !excluded(id));
            let mut want = wanters.iter().filter(|id| !excluded(id));
            while let (Some(&giver), Some(&wanter)) = (give.next(), want.next()) {
                *examined += 1;
                succ.insert(giver, wanter);
                has_supplier.insert(wanter);
            }
        }
        // An offer participates only if it both gives to someone and
        // receives from someone; walk permutation cycles among those, from
        // ascending ids (the full-rescan matcher's discovery order).
        let mut visited: BTreeSet<OfferId> = BTreeSet::new();
        let mut cycles: Vec<Vec<OfferId>> = Vec::new();
        for (&start, &first) in &succ {
            if visited.contains(&start) || !has_supplier.contains(&start) {
                continue;
            }
            let mut cycle = vec![start];
            visited.insert(start);
            let mut cur = first;
            while !visited.contains(&cur) {
                visited.insert(cur);
                cycle.push(cur);
                match succ.get(&cur) {
                    Some(&next) => cur = next,
                    None => break,
                }
            }
            if cur == start && cycle.len() >= 2 {
                cycles.push(cycle);
            }
        }
        cycles
    }

    /// The [`LeaderStrategy::PreferSingleLeader`] decomposition from the
    /// index: drain mutual two-cycles straight from opposing
    /// `(a, b)`/`(b, a)` bucket heads (the snippet-2 "merge
    /// exactly-matching counterparties" fast path), emit them by their
    /// earliest member, run plain FIFO on the remainder — and keep the
    /// biased decomposition only when it matches at least as many offers
    /// as plain FIFO would. Returns the cycles plus the number of offers
    /// the fast path matched.
    fn indexed_biased(&self, examined: &mut u64) -> (Vec<Vec<OfferId>>, u64) {
        let mut pairs: Vec<(OfferId, OfferId)> = Vec::new();
        for (a, b) in &self.mutual {
            let (Some(fwd), Some(rev)) = (
                self.by_trade.get(&(a.clone(), b.clone())),
                self.by_trade.get(&(b.clone(), a.clone())),
            ) else {
                continue;
            };
            for (&x, &y) in fwd.iter().zip(rev.iter()) {
                *examined += 1;
                pairs.push(if x < y { (x, y) } else { (y, x) });
            }
        }
        // The rescan matcher discovers pairs in submission order of their
        // earliest member, interleaved across trade pairs.
        pairs.sort_unstable();
        let paired: BTreeSet<OfferId> = pairs.iter().flat_map(|&(x, y)| [x, y]).collect();
        let mut biased: Vec<Vec<OfferId>> = pairs.iter().map(|&(x, y)| vec![x, y]).collect();
        biased.extend(self.indexed_fifo(Some(&paired), examined));
        let plain = self.indexed_fifo(None, examined);
        let matched = |cycles: &[Vec<OfferId>]| cycles.iter().map(Vec::len).sum::<usize>();
        // Only bias between *tied* decompositions: pairing off a two-cycle
        // that plain FIFO would have woven into a larger cycle must never
        // cost the book liquidity.
        if matched(&biased) >= matched(&plain) {
            let pair_matched = 2 * pairs.len() as u64;
            (biased, pair_matched)
        } else {
            (plain, 0)
        }
    }

    // ---- reference (full-rescan) matchers ----

    /// Greedy FIFO matching over the given entry indices (submission
    /// order): pairs each demand with the earliest unmatched supply of the
    /// wanted kind and walks the resulting permutation's cycles. Returns
    /// cycles of *entry* indices.
    fn fifo_cycles(&self, idx: &[usize]) -> Vec<Vec<usize>> {
        let m = idx.len();
        // supply[kind] = queue of dense positions giving that kind.
        let mut supply: BTreeMap<&AssetKind, VecDeque<usize>> = BTreeMap::new();
        for (pos, &i) in idx.iter().enumerate() {
            supply.entry(&self.entries[i].offer.gives).or_default().push_back(pos);
        }
        // successor[pos] = dense position receiving pos's asset.
        let mut successor: Vec<Option<usize>> = vec![None; m];
        let mut has_supplier = vec![false; m];
        for (pos, &i) in idx.iter().enumerate() {
            if let Some(queue) = supply.get_mut(&self.entries[i].offer.wants) {
                if let Some(giver) = queue.pop_front() {
                    successor[giver] = Some(pos);
                    has_supplier[pos] = true;
                }
            }
        }
        // An offer participates only if it both gives to someone and
        // receives from someone; walk permutation cycles among those.
        let mut visited = vec![false; m];
        let mut cycles: Vec<Vec<usize>> = Vec::new();
        for start in 0..m {
            if visited[start] || successor[start].is_none() || !has_supplier[start] {
                continue;
            }
            // Trace the cycle; bail if it wanders into non-participants.
            let mut cycle = vec![start];
            visited[start] = true;
            let mut cur = successor[start].expect("checked above");
            let mut closed = false;
            while !visited[cur] {
                visited[cur] = true;
                cycle.push(cur);
                match successor[cur] {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            if cur == start {
                closed = true;
            }
            if !closed || cycle.len() < 2 {
                continue;
            }
            cycles.push(cycle.into_iter().map(|pos| idx[pos]).collect());
        }
        cycles
    }

    /// The [`LeaderStrategy::PreferSingleLeader`] decomposition over a
    /// dense rescan: pair off mutual two-party trades first (earliest
    /// counter-offer wins), then run plain FIFO on the remainder — and
    /// keep the biased decomposition only when it matches at least as many
    /// offers as plain FIFO would. Two-party cycles have the smallest
    /// possible diameter, hence the smallest Lemma 4.13 timeout ladders,
    /// so when decompositions tie this picks the one that is strictly
    /// cheapest under the §4.6 single-leader protocol.
    fn biased_cycles(&self, idx: &[usize]) -> Vec<Vec<usize>> {
        let m = idx.len();
        // by_trade[(gives, wants)] = dense positions offering that trade.
        let mut by_trade: BTreeMap<(&AssetKind, &AssetKind), VecDeque<usize>> = BTreeMap::new();
        for (pos, &i) in idx.iter().enumerate() {
            let offer = &self.entries[i].offer;
            by_trade.entry((&offer.gives, &offer.wants)).or_default().push_back(pos);
        }
        let mut paired = vec![false; m];
        let mut pairs: Vec<Vec<usize>> = Vec::new();
        for pos in 0..m {
            if paired[pos] {
                continue;
            }
            let offer = &self.entries[idx[pos]].offer;
            if offer.gives == offer.wants {
                continue;
            }
            if let Some(counters) = by_trade.get_mut(&(&offer.wants, &offer.gives)) {
                while let Some(&cand) = counters.front() {
                    if paired[cand] {
                        counters.pop_front();
                        continue;
                    }
                    paired[pos] = true;
                    paired[cand] = true;
                    counters.pop_front();
                    pairs.push(vec![idx[pos], idx[cand]]);
                    break;
                }
            }
        }
        let rest: Vec<usize> = (0..m).filter(|&pos| !paired[pos]).map(|pos| idx[pos]).collect();
        let mut biased = pairs;
        biased.extend(self.fifo_cycles(&rest));
        let plain = self.fifo_cycles(idx);
        let matched = |cycles: &[Vec<usize>]| cycles.iter().map(Vec::len).sum::<usize>();
        // Only bias between *tied* decompositions: pairing off a two-cycle
        // that plain FIFO would have woven into a larger cycle must never
        // cost the book liquidity.
        if matched(&biased) >= matched(&plain) {
            biased
        } else {
            plain
        }
    }

    /// Builds the digraph and spec for one cleared cycle of offer ids.
    fn assemble(
        &self,
        id: SwapId,
        epoch: u64,
        cycle: &[OfferId],
        delta: Delta,
        now: SimTime,
    ) -> Result<ClearedSwap, ClearError> {
        let mut digraph = Digraph::new();
        for &oid in cycle {
            digraph.add_vertex(format!("{oid}"));
        }
        let k = cycle.len();
        let mut arc_kinds = Vec::with_capacity(k);
        for (pos, &oid) in cycle.iter().enumerate() {
            let head = VertexId::new(pos as u32);
            let tail = VertexId::new(((pos + 1) % k) as u32);
            digraph.add_arc(head, tail).expect("cycle arcs valid");
            let i = self.entry_index(oid).expect("cleared offers were issued by this service");
            arc_kinds.push(self.entries[i].offer.gives.clone());
        }
        let mut builder = SpecBuilder::new(digraph);
        builder.delta(delta).start(now + delta.times(1)).leader_strategy(self.leader_strategy);
        for (pos, &oid) in cycle.iter().enumerate() {
            let i = self.entry_index(oid).expect("cleared offers were issued by this service");
            let offer = &self.entries[i].offer;
            builder.identity(VertexId::new(pos as u32), offer.key, offer.hashlock);
        }
        let spec = builder.build()?;
        Ok(ClearedSwap { id, epoch, spec, offer_of_vertex: cycle.to_vec(), arc_kinds })
    }

    // ---- durability ----

    /// Captures the service's durable state (see [`BookSnapshot`]).
    pub fn snapshot(&self) -> BookSnapshot {
        BookSnapshot {
            first_id: self.first_id,
            epoch: self.epoch,
            next_swap: self.next_swap,
            entries: self.entries.iter().map(|e| (e.offer.clone(), e.status)).collect(),
            deferred: self.deferred.iter().copied().collect(),
            in_flight: self.in_flight.iter().map(|(&s, o)| (s, o.clone())).collect(),
        }
    }

    /// Rebuilds a service from a [`BookSnapshot`], rederiving the matching
    /// index, the reservation set, and the park/index split. The strategy
    /// and mode are configuration, not state, so the caller supplies them;
    /// the restored service plans and commits exactly as the snapshotted
    /// one would ([`last_clear_stats`](Self::last_clear_stats) alone resets
    /// to `None` — it is a measurement, not book state).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot references offer ids outside its own entry
    /// table — corruption the store's checksums should have caught.
    pub fn restore(
        snapshot: BookSnapshot,
        leader_strategy: LeaderStrategy,
        mode: ClearingMode,
    ) -> Self {
        let mut svc = ClearingService {
            leader_strategy,
            mode,
            first_id: snapshot.first_id,
            epoch: snapshot.epoch,
            next_swap: snapshot.next_swap,
            ..Default::default()
        };
        for (k, (offer, status)) in snapshot.entries.into_iter().enumerate() {
            let id = OfferId(svc.first_id + k as u64);
            let address = offer.key.address();
            svc.entries.push(OfferEntry { offer, status, id, address });
        }
        svc.deferred = snapshot.deferred.into_iter().collect();
        // The reservation set is exactly the union of in-flight parties —
        // the invariant `commit`/`resolve_swap` maintain incrementally.
        for (swap, offers) in snapshot.in_flight {
            for &oid in &offers {
                let i = svc.entry_index(oid).expect("in-flight offer inside the snapshot");
                svc.reserved.insert(svc.entries[i].address);
            }
            svc.in_flight.insert(swap, offers);
        }
        // Open offers re-enter the book in id order, restoring FIFO
        // positions; reserved parties' offers park instead of indexing,
        // exactly as a live `submit` would have left them.
        let open: Vec<(OfferId, Address)> = svc
            .entries
            .iter()
            .filter(|e| matches!(e.status, OfferStatus::Open))
            .map(|e| (e.id, e.address))
            .collect();
        for (id, address) in open {
            svc.open.insert(id);
            svc.by_address.entry(address).or_default().insert(id);
            if svc.reserved.contains(&address) {
                svc.parked.insert(id);
            } else {
                svc.index_insert(id);
            }
        }
        svc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_crypto::{MssKeypair, Secret};

    fn offer(seed: u8, gives: &str, wants: &str) -> Offer {
        let kp = MssKeypair::from_seed_with_height([seed; 32], 2);
        Offer {
            key: kp.public_key(),
            hashlock: Secret::from_bytes([seed + 100; 32]).hashlock(),
            gives: AssetKind::new(gives),
            wants: AssetKind::new(wants),
        }
    }

    fn clear(svc: &mut ClearingService) -> Vec<ClearedSwap> {
        svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap()
    }

    #[test]
    fn snapshot_restore_mid_lifecycle_is_equivalent() {
        // Build a book with every lifecycle state live at once: settled,
        // refunded, cancelled, matched (in-flight, so its party is
        // reserved), open-and-parked, open-and-indexed, and deferred.
        let mut svc = ClearingService::new().with_first_offer_id(7);
        svc.submit(offer(1, "a", "b"));
        svc.submit(offer(2, "b", "a"));
        let settled = clear(&mut svc)[0].id;
        svc.settle_swap(settled).unwrap();
        svc.submit(offer(3, "c", "d"));
        svc.submit(offer(4, "d", "c"));
        let refunded = clear(&mut svc)[0].id;
        svc.refund_swap(refunded).unwrap();
        let gone = svc.submit(offer(5, "e", "f"));
        svc.cancel(gone).unwrap();
        svc.submit(offer(6, "g", "h"));
        svc.submit(offer(7, "h", "g"));
        // Party 6 offers a second trade: it parks when the first matches.
        svc.submit(offer(6, "x", "y"));
        let in_flight = clear(&mut svc);
        assert_eq!(in_flight.len(), 1);
        // A fresh unmatched offer stays open and indexed.
        svc.submit(offer(8, "y", "x"));

        let snap = svc.snapshot();
        let restored =
            ClearingService::restore(snap.clone(), LeaderStrategy::default(), svc.mode());

        // Same durable state...
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.epoch(), svc.epoch());
        assert_eq!(restored.offer_count(), svc.offer_count());
        assert_eq!(restored.open_count(), svc.open_count());
        assert_eq!(restored.reserved_addresses(), svc.reserved_addresses());
        for raw in 0..svc.offer_count() as u64 {
            let id = OfferId::from_raw(7 + raw);
            assert_eq!(restored.status(id), svc.status(id), "{id}");
        }
        // ...and the same future: both draw identical plans, and resolving
        // the in-flight swap wakes both books identically.
        let (mut live, mut back) = (svc, restored);
        let a = live.clear(Delta::from_ticks(10), SimTime::from_ticks(50)).unwrap();
        let b = back.clear(Delta::from_ticks(10), SimTime::from_ticks(50)).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.offer_of_vertex, y.offer_of_vertex);
        }
        live.settle_swap(in_flight[0].id).unwrap();
        back.settle_swap(in_flight[0].id).unwrap();
        assert_eq!(live.snapshot(), back.snapshot());
        let a = live.clear(Delta::from_ticks(10), SimTime::from_ticks(90)).unwrap();
        let b = back.clear(Delta::from_ticks(10), SimTime::from_ticks(90)).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(live.snapshot(), back.snapshot());
    }

    #[test]
    fn three_way_cycle_clears() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "altcoin", "cadillac"));
        svc.submit(offer(2, "btc", "altcoin"));
        svc.submit(offer(3, "cadillac", "btc"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 1);
        let swap = &swaps[0];
        assert_eq!(swap.spec.digraph.vertex_count(), 3);
        assert_eq!(swap.spec.digraph.arc_count(), 3);
        assert!(swap.spec.digraph.is_strongly_connected());
        swap.spec.validate().unwrap();
        // Start at least Δ in the future.
        assert!(swap.spec.start >= SimTime::ZERO + Delta::from_ticks(10).times(1));
        // Arc kinds follow the givers around the cycle.
        assert_eq!(swap.arc_kinds.len(), 3);
        assert_eq!(swap.epoch, 0);
    }

    #[test]
    fn two_way_swap_clears() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "eth"));
        svc.submit(offer(2, "eth", "btc"));
        let swaps = svc.clear(Delta::from_ticks(5), SimTime::from_ticks(100)).unwrap();
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].spec.digraph.vertex_count(), 2);
        assert_eq!(swaps[0].spec.leaders.len(), 1);
    }

    #[test]
    fn disjoint_cycles_clear_separately() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "a", "b"));
        svc.submit(offer(2, "b", "a"));
        svc.submit(offer(3, "x", "y"));
        svc.submit(offer(4, "y", "z"));
        svc.submit(offer(5, "z", "x"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 2);
        let sizes: Vec<usize> = swaps.iter().map(|s| s.spec.digraph.vertex_count()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&3));
        // Swap ids are distinct and issued in order.
        assert_ne!(swaps[0].id, swaps[1].id);
    }

    #[test]
    fn unmatched_offers_left_open() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "eth"));
        svc.submit(offer(2, "eth", "btc"));
        let straggler = svc.submit(offer(3, "doge", "btc")); // nobody wants doge
        let swaps = clear(&mut svc);
        // The btc/eth pair clears; doge cannot.
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].spec.digraph.vertex_count(), 2);
        assert_eq!(svc.offer_count(), 3);
        assert_eq!(svc.status(straggler), Some(OfferStatus::Open));
        assert_eq!(svc.open_count(), 1);
    }

    #[test]
    fn no_offers_no_swaps() {
        let mut svc = ClearingService::new();
        assert!(clear(&mut svc).is_empty());
    }

    #[test]
    fn foreign_offer_ids_are_rejected_not_panicking() {
        // A stale or foreign id — including one far past the entry table,
        // where the historical `id.0 as usize` indexing panicked — answers
        // through every lookup surface without panicking.
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "eth"));
        for bogus in [OfferId(1), OfferId(999), OfferId(u64::MAX)] {
            assert_eq!(svc.offer(bogus).map(|o| o.gives.clone()), None, "{bogus}");
            assert_eq!(svc.status(bogus), None, "{bogus}");
            assert_eq!(svc.cancel(bogus), Err(CancelError::UnknownOffer(bogus)));
        }
        // The one real offer is untouched by the probing.
        assert_eq!(svc.status(OfferId(0)), Some(OfferStatus::Open));
        assert_eq!(svc.open_count(), 1);
    }

    #[test]
    fn offer_ids_decoupled_from_entry_indices() {
        // Regression for the entry-index/OfferId conflation: with an id
        // base, every id the service reports must be a real issued id —
        // the historical `OfferId(entry_index as u64)` in the clear path
        // would fabricate unissued low ids for skipped/deferred cycles.
        for mode in [ClearingMode::Indexed, ClearingMode::FullRescan] {
            let mut svc = ClearingService::new().with_first_offer_id(1_000).with_mode(mode);
            let a1 = svc.submit(offer(1, "x", "y"));
            assert_eq!(a1.raw(), 1_000);
            let a2 = svc.submit(offer(1, "p", "q")); // same party as a1
            let b = svc.submit(offer(2, "y", "x"));
            let c = svc.submit(offer(3, "q", "p"));
            let swaps = clear(&mut svc);
            assert_eq!(swaps.len(), 1, "{mode}: one concurrent swap per party");
            assert!(swaps[0].offer_of_vertex.contains(&a1), "{mode}");
            assert!(swaps[0].offer_of_vertex.contains(&b), "{mode}");
            assert!(swaps[0].offer_of_vertex.iter().all(|id| id.raw() >= 1_000), "{mode}");
            // The rejected (a2, c) cycle deferred under its *real* ids: the
            // in-flight party's resolution must wake exactly those offers.
            assert!(svc.any_deferred_from(svc.reserved_addresses()), "{mode}");
            svc.settle_swap(swaps[0].id).unwrap();
            let next = clear(&mut svc);
            assert_eq!(next.len(), 1, "{mode}");
            assert!(next[0].offer_of_vertex.contains(&a2), "{mode}");
            assert!(next[0].offer_of_vertex.contains(&c), "{mode}");
            // Sub-base ids (the old entry indices) are foreign here.
            assert_eq!(svc.status(OfferId(0)), None, "{mode}");
            assert_eq!(svc.cancel(OfferId(3)), Err(CancelError::UnknownOffer(OfferId(3))));
        }
    }

    #[test]
    fn modes_agree_on_a_mixed_book() {
        // A deterministic end-to-end agreement check (the property tests
        // cover random streams): multi-epoch, reservations, cancels,
        // same-party re-entry — both modes must produce byte-identical
        // swap sequences and final lifecycle states.
        let drive = |mode: ClearingMode| {
            let mut log: Vec<String> = Vec::new();
            let mut svc = ClearingService::new().with_mode(mode);
            svc.submit(offer(1, "a", "b"));
            svc.submit(offer(2, "b", "c"));
            svc.submit(offer(3, "c", "a"));
            svc.submit(offer(4, "p", "q"));
            let cancelled = svc.submit(offer(5, "q", "p"));
            svc.cancel(cancelled).unwrap();
            svc.submit(offer(6, "q", "p"));
            let first = clear(&mut svc);
            // Same parties return mid-flight plus fresh counterparties.
            svc.submit(offer(1, "m", "n"));
            svc.submit(offer(7, "n", "m"));
            let second = clear(&mut svc);
            for swap in first.iter().chain(&second) {
                svc.settle_swap(swap.id).unwrap();
            }
            let third = clear(&mut svc);
            for swaps in [first, second, third] {
                log.extend(swaps.iter().map(|s| format!("{s:?}")));
            }
            for raw in 0..svc.offer_count() as u64 {
                log.push(format!("{:?}", svc.status(OfferId(raw))));
            }
            log.push(format!("open={} epoch={}", svc.open_count(), svc.epoch()));
            log
        };
        assert_eq!(drive(ClearingMode::Indexed), drive(ClearingMode::FullRescan));
    }

    #[test]
    fn pair_fast_path_drains_mutual_two_cycles() {
        let mut svc =
            ClearingService::new().with_leader_strategy(LeaderStrategy::PreferSingleLeader);
        svc.submit(offer(1, "a", "b"));
        svc.submit(offer(2, "b", "a"));
        svc.submit(offer(3, "b", "a"));
        svc.submit(offer(4, "a", "b"));
        svc.submit(offer(5, "zzz", "a")); // no counterparty; never examined
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 2);
        let stats = svc.last_clear_stats().unwrap();
        assert_eq!(stats.mode, ClearingMode::Indexed);
        assert_eq!(stats.pair_matched, 4, "both two-cycles came off the bucket heads");
        assert_eq!(stats.cycles_emitted, 2);
        assert_eq!(stats.offers_matched, 4);
        assert_eq!(stats.open_offers, 5);
        assert!(
            stats.offers_examined < stats.open_offers * 2,
            "the straggler's dead kinds cost nothing"
        );
    }

    #[test]
    fn indexed_examines_only_active_kinds() {
        let build = |mode: ClearingMode| {
            let mut svc = ClearingService::new().with_mode(mode);
            svc.submit(offer(1, "btc", "eth"));
            svc.submit(offer(2, "eth", "btc"));
            for seed in 3..13 {
                // An inert tail: kinds nobody else gives or wants.
                svc.submit(offer(seed, &format!("dead{seed}a"), &format!("dead{seed}b")));
            }
            svc
        };
        let mut svc = build(ClearingMode::Indexed);
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 1);
        let stats = svc.last_clear_stats().unwrap();
        assert_eq!(stats.open_offers, 12);
        assert_eq!(stats.offers_examined, 2, "two zip steps: kinds btc and eth");

        // The reference mode pays for the whole book to reach the same
        // answer.
        let mut full = build(ClearingMode::FullRescan);
        let full_swaps = clear(&mut full);
        assert_eq!(full_swaps.len(), 1);
        assert_eq!(full.last_clear_stats().unwrap().offers_examined, 12);
        assert_eq!(format!("{:?}", swaps), format!("{:?}", full_swaps));
    }

    #[test]
    fn plan_prices_the_epoch_before_commit() {
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "x", "y"));
        svc.submit(offer(2, "y", "x"));
        let plan = svc.plan();
        assert!(!plan.is_empty());
        assert_eq!(plan.stats().cycles_emitted, 1);
        assert_eq!(plan.stats().offers_matched, 2);
        // The plan's cost is known before any swap is published; commit
        // then produces exactly what a one-shot clear would.
        let swaps = svc.commit(plan, Delta::from_ticks(10), SimTime::ZERO).unwrap();
        assert_eq!(swaps.len(), 1);
        assert_eq!(svc.epoch(), 1);
        assert_eq!(svc.last_clear_stats().unwrap().offers_matched, 2);
    }

    #[test]
    fn self_satisfying_offer_not_a_swap() {
        // A party giving and wanting the same kind would form a self-loop;
        // cycles of length 1 are rejected.
        let mut svc = ClearingService::new();
        svc.submit(offer(1, "btc", "btc"));
        assert!(clear(&mut svc).is_empty());
    }

    #[test]
    fn offer_of_vertex_maps_back() {
        let mut svc = ClearingService::new();
        let id0 = svc.submit(offer(1, "a", "b"));
        let id1 = svc.submit(offer(2, "b", "a"));
        let swaps = clear(&mut svc);
        let cleared = &swaps[0];
        assert_eq!(cleared.offer_of_vertex.len(), 2);
        assert!(cleared.offer_of_vertex.contains(&id0));
        assert!(cleared.offer_of_vertex.contains(&id1));
        // Vertex identities match the offers' keys.
        for (pos, oid) in cleared.offer_of_vertex.iter().enumerate() {
            let o = svc.offer(*oid).unwrap();
            assert_eq!(cleared.spec.keys[pos], o.key);
        }
    }

    #[test]
    fn clearing_is_deterministic_across_services() {
        let build = || {
            let mut svc = ClearingService::new();
            for i in 0..4 {
                svc.submit(offer(i + 1, &format!("k{i}"), &format!("k{}", (i + 1) % 4)));
            }
            svc
        };
        let a = clear(&mut build());
        let b = clear(&mut build());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn epoch_clearing_consumes_matched_offers() {
        // The old `clear(&self)` re-matched the same offers on every call;
        // epoch clearing must hand them out exactly once.
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        let first = clear(&mut svc);
        assert_eq!(first.len(), 1);
        let swap = first[0].id;
        assert_eq!(svc.status(a), Some(OfferStatus::Matched { epoch: 0, swap }));
        assert_eq!(svc.status(b), Some(OfferStatus::Matched { epoch: 0, swap }));
        // Second epoch: the book is empty, nothing re-matches.
        assert!(clear(&mut svc).is_empty());
        assert_eq!(svc.epoch(), 2);
        assert_eq!(svc.open_count(), 0);
    }

    #[test]
    fn later_epoch_matches_new_offers_with_leftovers() {
        let mut svc = ClearingService::new();
        let straggler = svc.submit(offer(1, "gbp", "usd"));
        assert!(clear(&mut svc).is_empty());
        // A counterparty arrives in the next epoch.
        let late = svc.submit(offer(2, "usd", "gbp"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].epoch, 1);
        assert!(swaps[0].offer_of_vertex.contains(&straggler));
        assert!(swaps[0].offer_of_vertex.contains(&late));
    }

    #[test]
    fn cancelled_offer_never_matches() {
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        svc.cancel(a).unwrap();
        assert_eq!(svc.status(a), Some(OfferStatus::Cancelled));
        // b's only counterparty is gone: no cycle forms, this epoch or any
        // later one.
        assert!(clear(&mut svc).is_empty());
        assert!(clear(&mut svc).is_empty());
        assert_eq!(svc.status(b), Some(OfferStatus::Open));
    }

    #[test]
    fn cancel_rejects_non_open_offers() {
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        let swaps = clear(&mut svc);
        let swap = swaps[0].id;
        assert_eq!(
            svc.cancel(a),
            Err(CancelError::NotOpen(a, OfferStatus::Matched { epoch: 0, swap }))
        );
        svc.cancel(b).unwrap_err();
        assert_eq!(svc.cancel(OfferId(99)), Err(CancelError::UnknownOffer(OfferId(99))));
        // Double-cancel is also rejected.
        let c = svc.submit(offer(3, "p", "q"));
        svc.cancel(c).unwrap();
        assert_eq!(svc.cancel(c), Err(CancelError::NotOpen(c, OfferStatus::Cancelled)));
    }

    #[test]
    fn settle_and_refund_resolve_the_lifecycle() {
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        let p = svc.submit(offer(3, "s", "t"));
        let q = svc.submit(offer(4, "t", "s"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 2);
        let (first, second) = (swaps[0].id, swaps[1].id);
        assert_eq!(svc.offers_of_swap(first), Some(swaps[0].offer_of_vertex.as_slice()));
        svc.settle_swap(first).unwrap();
        svc.refund_swap(second).unwrap();
        assert_eq!(svc.status(a), Some(OfferStatus::Settled));
        assert_eq!(svc.status(b), Some(OfferStatus::Settled));
        assert_eq!(svc.status(p), Some(OfferStatus::Refunded));
        assert_eq!(svc.status(q), Some(OfferStatus::Refunded));
        // Both resolutions released their reservations.
        assert!(svc.reserved_addresses().is_empty());
        // Resolution is one-shot.
        assert_eq!(svc.settle_swap(first), Err(LifecycleError::UnknownSwap(first)));
        assert_eq!(svc.refund_swap(second), Err(LifecycleError::UnknownSwap(second)));
        assert!(svc.offers_of_swap(first).is_none());
    }

    #[test]
    fn prefer_single_leader_biases_tied_decompositions() {
        // This book admits two decompositions that tie at 4 matched offers:
        // one 4-cycle (what plain FIFO weaves, in this submission order) or
        // two 2-cycles. The biased strategy must pick the 2-cycles: same
        // liquidity, strictly smaller timeout ladders under §4.6.
        let book = [("a", "b"), ("b", "c"), ("c", "b"), ("b", "a")];
        let submit = |svc: &mut ClearingService| {
            for (i, (g, w)) in book.iter().enumerate() {
                svc.submit(offer(i as u8 + 1, g, w));
            }
        };

        let mut plain = ClearingService::new();
        submit(&mut plain);
        let plain_swaps = clear(&mut plain);
        assert_eq!(plain_swaps.len(), 1);
        assert_eq!(plain_swaps[0].spec.digraph.vertex_count(), 4);

        let mut biased =
            ClearingService::new().with_leader_strategy(LeaderStrategy::PreferSingleLeader);
        submit(&mut biased);
        let biased_swaps = clear(&mut biased);
        assert_eq!(biased_swaps.len(), 2, "bias decomposes into two 2-cycles");
        let matched: usize = biased_swaps.iter().map(|s| s.offer_of_vertex.len()).sum();
        assert_eq!(matched, 4, "the decompositions tie on matched offers");
        for swap in &biased_swaps {
            assert_eq!(swap.spec.digraph.vertex_count(), 2);
            assert!(swap.single_leader_feasible());
            // The §4.6 cost of the shorter cycles is strictly lower.
            assert!(
                swap.spec.worst_case_duration() < plain_swaps[0].spec.worst_case_duration(),
                "2-cycle ladder must undercut the 4-cycle ladder"
            );
        }
    }

    #[test]
    fn bias_never_reduces_matched_offers() {
        // Pairing (a→b, b→a) off would orphan the (b→c, c→a) tail: plain
        // FIFO matches 3 offers into a 3-cycle, the pairs-first split only
        // 2. The decompositions do NOT tie, so the bias must fall back.
        let book = [("a", "b"), ("b", "c"), ("c", "a"), ("b", "a")];
        for strategy in [LeaderStrategy::MinimumExact, LeaderStrategy::PreferSingleLeader] {
            for mode in [ClearingMode::Indexed, ClearingMode::FullRescan] {
                let mut svc = ClearingService::new().with_leader_strategy(strategy).with_mode(mode);
                for (i, (g, w)) in book.iter().enumerate() {
                    svc.submit(offer(i as u8 + 1, g, w));
                }
                let swaps = clear(&mut svc);
                assert_eq!(swaps.len(), 1, "{strategy:?}/{mode}");
                assert_eq!(swaps[0].spec.digraph.vertex_count(), 3, "{strategy:?}/{mode}");
            }
        }
    }

    #[test]
    fn in_flight_parties_are_reserved() {
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(2, "y", "x"));
        let first = clear(&mut svc);
        assert_eq!(first.len(), 1);
        let in_flight = first[0].id;
        assert_eq!(svc.reserved_addresses().len(), 2);

        // The same party (same key, seed 1) returns with a fresh trade
        // while its first swap is still in flight; a counterparty is ready.
        let c = svc.submit(offer(1, "p", "q"));
        let d = svc.submit(offer(3, "q", "p"));
        // Before any clearing saw it, c is not (yet) deferred.
        assert!(!svc.any_deferred_from(svc.reserved_addresses()));
        assert!(clear(&mut svc).is_empty(), "reserved party must not re-match in flight");
        assert_eq!(svc.status(a), Some(OfferStatus::Matched { epoch: 0, swap: in_flight }));
        assert_eq!(svc.status(b), Some(OfferStatus::Matched { epoch: 0, swap: in_flight }));
        assert_eq!(svc.status(c), Some(OfferStatus::Open));
        assert_eq!(svc.status(d), Some(OfferStatus::Open));
        // The clearing skipped c under the reservation: it is deferred (d,
        // merely unmatched for lack of a counterparty, is not).
        assert!(svc.any_deferred_from(svc.reserved_addresses()));

        // Settlement releases the reservation; the rolled-over offers clear.
        svc.settle_swap(in_flight).unwrap();
        assert!(svc.reserved_addresses().is_empty());
        let next = clear(&mut svc);
        assert_eq!(next.len(), 1);
        assert!(next[0].offer_of_vertex.contains(&c));
        assert!(next[0].offer_of_vertex.contains(&d));
    }

    #[test]
    fn same_epoch_double_commit_rejected() {
        // One clearing must never match two offers of the same party into
        // two concurrent swaps (shared key material breaks the pooled
        // executor's party-disjointness). The second cycle is deferred and
        // clears after the first swap resolves.
        let mut svc = ClearingService::new();
        let a1 = svc.submit(offer(1, "x", "y"));
        let a2 = svc.submit(offer(1, "p", "q")); // same party as a1
        let b = svc.submit(offer(2, "y", "x"));
        let c = svc.submit(offer(3, "q", "p"));
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 1, "one concurrent swap per party");
        assert!(swaps[0].offer_of_vertex.contains(&a1));
        assert!(swaps[0].offer_of_vertex.contains(&b));
        assert_eq!(svc.status(a2), Some(OfferStatus::Open));
        assert_eq!(svc.status(c), Some(OfferStatus::Open));
        // The rejected cycle is deferred on the in-flight party, so the
        // swap's resolution is what re-opens the book for it.
        assert!(svc.any_deferred_from(svc.reserved_addresses()));
        svc.settle_swap(swaps[0].id).unwrap();
        let next = clear(&mut svc);
        assert_eq!(next.len(), 1);
        assert!(next[0].offer_of_vertex.contains(&a2));
        assert!(next[0].offer_of_vertex.contains(&c));
    }

    #[test]
    fn self_cycle_through_one_party_rejected() {
        // Both sides of the trade belong to one keypair: the cycle would
        // bind the same address to two vertices, so it must not clear.
        let mut svc = ClearingService::new();
        let a = svc.submit(offer(1, "x", "y"));
        let b = svc.submit(offer(1, "y", "x"));
        assert!(clear(&mut svc).is_empty(), "one party cannot occupy two vertices");
        assert_eq!(svc.status(a), Some(OfferStatus::Open));
        assert_eq!(svc.status(b), Some(OfferStatus::Open));
    }

    #[test]
    fn larger_market_mixed_kinds() {
        let mut svc = ClearingService::new();
        // 4-cycle plus a 2-cycle plus two stragglers.
        svc.submit(offer(1, "a", "b"));
        svc.submit(offer(2, "b", "c"));
        svc.submit(offer(3, "c", "d"));
        svc.submit(offer(4, "d", "a"));
        svc.submit(offer(5, "p", "q"));
        svc.submit(offer(6, "q", "p"));
        svc.submit(offer(7, "zzz", "a")); // loses the race for kind "a"
        let swaps = clear(&mut svc);
        assert_eq!(swaps.len(), 2);
        let total: usize = swaps.iter().map(|s| s.spec.digraph.vertex_count()).sum();
        assert_eq!(total, 6);
        for s in &swaps {
            s.spec.validate().unwrap();
        }
        assert_eq!(svc.open_count(), 1);
    }
}
