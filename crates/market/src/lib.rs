//! The market-clearing service (§4.2 of the paper).
//!
//! "For simplicity, assume the swap digraph is constructed by a (possibly
//! centralized) market-clearing service. … The clearing service is **not a
//! trusted party**, because the parties can check the consistency of the
//! clearing service's responses."
//!
//! This crate implements both halves of that sentence:
//!
//! * [`ClearingService`] — collects [`Offer`]s (each party's hashlock plus
//!   what it gives and wants), matches them into disjoint swap cycles (the
//!   "clearing problem" the paper references to Kaplan's barter-exchange
//!   work), elects leaders via feedback-vertex-set computation, and
//!   publishes one [`ClearedSwap`] per cycle group;
//! * [`verify_cleared_swap`] — the *party-side* consistency check: before
//!   participating, a party confirms the published spec is structurally
//!   valid, that its own identity, hashlock, and offered asset kinds appear
//!   exactly as submitted, and that the start time leaves the required Δ
//!   slack.
//!
//! # The offer lifecycle
//!
//! The service runs a *continuous* market, not a one-shot matching. Every
//! offer carries an [`OfferStatus`] and moves through a strict lifecycle:
//!
//! `Open` → (`cancel`) `Cancelled`, or → (`clear`) `Matched { epoch, swap }`
//! → (`settle_swap` / `refund_swap`) `Settled` / `Refunded`.
//!
//! [`ClearingService::clear`] runs one *epoch*: it matches only the
//! currently open offers and **consumes** every offer it matches — a
//! matched offer can never re-enter a later epoch's book, and a cancelled
//! offer can never be matched at all. Unmatched offers roll over, so a
//! straggler eventually clears when a counterparty shows up. Each cleared
//! cycle gets a service-wide unique [`SwapId`]; an execution layer (see
//! `swap-core`'s `Exchange`) drives the cleared swaps and reports back via
//! [`ClearingService::settle_swap`] / [`ClearingService::refund_swap`].
//!
//! Matching runs from an **incremental clearing index** by default
//! ([`ClearingMode::Indexed`]): per-`(gives, wants)` price-time buckets
//! maintained on every lifecycle delta, a mutual-two-cycle fast path, and
//! a parked set for reserved parties, so an epoch costs O(matchable
//! region) instead of O(open book). [`ClearingMode::FullRescan`] keeps the
//! original whole-book matcher as the executable reference; property
//! tests pin the two modes byte-identical. [`ClearStats`] reports the
//! measured work (offers examined, cycles emitted) of each epoch, and the
//! [`ClearingService::plan`] / [`ClearingService::commit`] split lets an
//! execution layer price an epoch before publishing it.
//!
//! [`SpecBuilder`] is the lower-level brick: given any digraph and identity
//! table it assembles a validated [`swap_contract::SwapSpec`], choosing leaders exactly or
//! greedily. The protocol runner and benches use it to set up swaps over
//! arbitrary digraph families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod clearing;
pub mod verify;

pub use builder::{BuildError, LeaderStrategy, SpecBuilder};
pub use clearing::{
    AssetKind, BookSnapshot, CancelError, ClearError, ClearPlan, ClearStats, ClearedSwap,
    ClearingMode, ClearingService, LifecycleError, Offer, OfferId, OfferStatus, SwapId,
};
pub use verify::{verify_cleared_swap, VerifyError};
