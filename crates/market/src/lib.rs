//! The market-clearing service (§4.2 of the paper).
//!
//! "For simplicity, assume the swap digraph is constructed by a (possibly
//! centralized) market-clearing service. … The clearing service is **not a
//! trusted party**, because the parties can check the consistency of the
//! clearing service's responses."
//!
//! This crate implements both halves of that sentence:
//!
//! * [`ClearingService`] — collects [`Offer`]s (each party's hashlock plus
//!   what it gives and wants), matches them into disjoint swap cycles (the
//!   "clearing problem" the paper references to Kaplan's barter-exchange
//!   work), elects leaders via feedback-vertex-set computation, and
//!   publishes one [`ClearedSwap`] per cycle group;
//! * [`verify_cleared_swap`] — the *party-side* consistency check: before
//!   participating, a party confirms the published spec is structurally
//!   valid, that its own identity, hashlock, and offered asset kinds appear
//!   exactly as submitted, and that the start time leaves the required Δ
//!   slack.
//!
//! [`SpecBuilder`] is the lower-level brick: given any digraph and identity
//! table it assembles a validated [`SwapSpec`], choosing leaders exactly or
//! greedily. The protocol runner and benches use it to set up swaps over
//! arbitrary digraph families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod clearing;
pub mod verify;

pub use builder::{BuildError, LeaderStrategy, SpecBuilder};
pub use clearing::{AssetKind, ClearedSwap, ClearingService, Offer, OfferId};
pub use verify::{verify_cleared_swap, VerifyError};
