//! Party-side verification of a cleared swap.
//!
//! The clearing service is untrusted (§4.2): before escrowing anything, a
//! party checks that the published [`ClearedSwap`] is structurally sound
//! *and* faithful to the offer the party actually submitted. A party that
//! detects any inconsistency simply abandons the protocol — at that point it
//! has signed nothing and escrowed nothing.

use std::fmt;

use swap_contract::spec::SpecError;
use swap_crypto::Hashlock;
use swap_digraph::VertexId;
use swap_sim::SimTime;

use crate::clearing::{AssetKind, ClearedSwap, Offer};

/// Ways a published swap can betray a party's offer.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The spec itself is structurally invalid.
    Spec(SpecError),
    /// The party's key does not appear at the claimed vertex.
    WrongIdentity,
    /// The party is listed as a leader but with a hashlock it never
    /// generated (it could never reveal that secret).
    ForeignHashlock {
        /// The hashlock the spec attributes to this party.
        published: Hashlock,
    },
    /// An arc leaving the party carries a different asset kind than offered.
    WrongGiveKind {
        /// What the spec says the party relinquishes.
        published: AssetKind,
        /// What the party actually offered.
        offered: AssetKind,
    },
    /// An arc entering the party carries a different asset kind than wanted.
    WrongWantKind {
        /// What the spec says the party acquires.
        published: AssetKind,
        /// What the party actually demanded.
        offered: AssetKind,
    },
    /// The party has no entering arc — it would pay without acquiring.
    NoEnteringArc,
    /// The party has no leaving arc — a free ride someone will veto.
    NoLeavingArc,
    /// The start time is not far enough in the future for Phase One to be
    /// possible (`T` must be at least Δ away).
    StartTooSoon {
        /// The published start.
        start: SimTime,
        /// The earliest acceptable start.
        earliest: SimTime,
    },
    /// The kinds table does not cover every arc.
    MalformedKinds,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Spec(e) => write!(f, "invalid spec: {e}"),
            VerifyError::WrongIdentity => write!(f, "published key is not mine"),
            VerifyError::ForeignHashlock { .. } => {
                write!(f, "published hashlock is not the one I generated")
            }
            VerifyError::WrongGiveKind { published, offered } => {
                write!(f, "spec has me giving {published}, I offered {offered}")
            }
            VerifyError::WrongWantKind { published, offered } => {
                write!(f, "spec has me acquiring {published}, I wanted {offered}")
            }
            VerifyError::NoEnteringArc => write!(f, "I would pay without acquiring anything"),
            VerifyError::NoLeavingArc => write!(f, "I am given a free ride; swap is malformed"),
            VerifyError::StartTooSoon { start, earliest } => {
                write!(f, "start {start} is before earliest acceptable {earliest}")
            }
            VerifyError::MalformedKinds => write!(f, "arc kind table malformed"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SpecError> for VerifyError {
    fn from(e: SpecError) -> Self {
        VerifyError::Spec(e)
    }
}

/// Checks a published [`ClearedSwap`] from the standpoint of the party at
/// `my_vertex` who submitted `my_offer` at time `now`.
///
/// # Errors
///
/// The first inconsistency found, as a [`VerifyError`].
pub fn verify_cleared_swap(
    cleared: &ClearedSwap,
    my_vertex: VertexId,
    my_offer: &Offer,
    now: SimTime,
) -> Result<(), VerifyError> {
    let spec = &cleared.spec;
    spec.validate()?;
    if cleared.arc_kinds.len() != spec.digraph.arc_count() {
        return Err(VerifyError::MalformedKinds);
    }
    // My identity is where the service says it is.
    if spec.keys.get(my_vertex.index()) != Some(&my_offer.key) {
        return Err(VerifyError::WrongIdentity);
    }
    // If I am a leader, the hashlock must be mine (otherwise I can never
    // reveal "my" secret and the swap dies with my asset locked).
    if let Some(i) = spec.leader_index(my_vertex) {
        if spec.hashlocks[i] != my_offer.hashlock {
            return Err(VerifyError::ForeignHashlock { published: spec.hashlocks[i] });
        }
    }
    // Degree sanity: strongly connected implies both, but check locally so
    // the error is attributable.
    if spec.digraph.in_degree(my_vertex) == 0 {
        return Err(VerifyError::NoEnteringArc);
    }
    if spec.digraph.out_degree(my_vertex) == 0 {
        return Err(VerifyError::NoLeavingArc);
    }
    // Every arc leaving me carries what I give; every arc entering me
    // carries what I want.
    for arc in spec.digraph.out_arcs(my_vertex) {
        let kind = &cleared.arc_kinds[arc.id.index()];
        if kind != &my_offer.gives {
            return Err(VerifyError::WrongGiveKind {
                published: kind.clone(),
                offered: my_offer.gives.clone(),
            });
        }
    }
    for arc in spec.digraph.in_arcs(my_vertex) {
        let kind = &cleared.arc_kinds[arc.id.index()];
        if kind != &my_offer.wants {
            return Err(VerifyError::WrongWantKind {
                published: kind.clone(),
                offered: my_offer.wants.clone(),
            });
        }
    }
    // Phase One needs at least Δ between publication and start.
    let earliest = now + spec.delta.times(1);
    if spec.start < earliest {
        return Err(VerifyError::StartTooSoon { start: spec.start, earliest });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clearing::ClearingService;
    use swap_crypto::{MssKeypair, Secret};
    use swap_sim::Delta;

    fn offer(seed: u8, gives: &str, wants: &str) -> Offer {
        let kp = MssKeypair::from_seed_with_height([seed; 32], 2);
        Offer {
            key: kp.public_key(),
            hashlock: Secret::from_bytes([seed + 100; 32]).hashlock(),
            gives: AssetKind::new(gives),
            wants: AssetKind::new(wants),
        }
    }

    fn cleared_triangle() -> (ClearedSwap, Vec<Offer>) {
        let offers = vec![
            offer(1, "altcoin", "cadillac"),
            offer(2, "btc", "altcoin"),
            offer(3, "cadillac", "btc"),
        ];
        let mut svc = ClearingService::new();
        for o in &offers {
            svc.submit(o.clone());
        }
        let mut swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        (swaps.remove(0), offers)
    }

    #[test]
    fn honest_clearing_verifies_for_every_party() {
        let (cleared, offers) = cleared_triangle();
        for (pos, oid) in cleared.offer_of_vertex.iter().enumerate() {
            let my_offer = &offers[oid.raw() as usize];
            verify_cleared_swap(&cleared, VertexId::new(pos as u32), my_offer, SimTime::ZERO)
                .unwrap_or_else(|e| panic!("party {pos}: {e}"));
        }
    }

    #[test]
    fn wrong_identity_detected() {
        let (cleared, offers) = cleared_triangle();
        // Party 0 checks vertex 1's slot.
        let err =
            verify_cleared_swap(&cleared, VertexId::new(1), &offers[0], SimTime::ZERO).unwrap_err();
        assert_eq!(err, VerifyError::WrongIdentity);
    }

    #[test]
    fn swapped_hashlock_detected_by_leader() {
        let (mut cleared, offers) = cleared_triangle();
        let leader = cleared.spec.leaders[0];
        let victim_offer = &offers[cleared.offer_of_vertex[leader.index()].raw() as usize];
        // Service substitutes its own hashlock for the leader's.
        cleared.spec.hashlocks[0] = Secret::from_bytes([0xEE; 32]).hashlock();
        let err = verify_cleared_swap(&cleared, leader, victim_offer, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VerifyError::ForeignHashlock { .. }));
    }

    #[test]
    fn wrong_arc_kind_detected() {
        let (mut cleared, offers) = cleared_triangle();
        // Corrupt the kind on vertex 0's leaving arc.
        let v0 = VertexId::new(0);
        let out_arc = cleared.spec.digraph.out_arcs(v0).next().unwrap().id;
        cleared.arc_kinds[out_arc.index()] = AssetKind::new("peanuts");
        let my_offer = &offers[cleared.offer_of_vertex[0].raw() as usize];
        let err = verify_cleared_swap(&cleared, v0, my_offer, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VerifyError::WrongGiveKind { .. }));
    }

    #[test]
    fn wrong_want_kind_detected() {
        let (mut cleared, offers) = cleared_triangle();
        let v0 = VertexId::new(0);
        let in_arc = cleared.spec.digraph.in_arcs(v0).next().unwrap().id;
        cleared.arc_kinds[in_arc.index()] = AssetKind::new("peanuts");
        let my_offer = &offers[cleared.offer_of_vertex[0].raw() as usize];
        let err = verify_cleared_swap(&cleared, v0, my_offer, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VerifyError::WrongWantKind { .. }));
    }

    #[test]
    fn start_too_soon_detected() {
        let (cleared, offers) = cleared_triangle();
        let my_offer = &offers[cleared.offer_of_vertex[0].raw() as usize];
        // Checking "now" so late that the published start is < now + Δ.
        let late_now = cleared.spec.start;
        let err = verify_cleared_swap(&cleared, VertexId::new(0), my_offer, late_now).unwrap_err();
        assert!(matches!(err, VerifyError::StartTooSoon { .. }));
    }

    #[test]
    fn malformed_kinds_detected() {
        let (mut cleared, offers) = cleared_triangle();
        cleared.arc_kinds.pop();
        let my_offer = &offers[cleared.offer_of_vertex[0].raw() as usize];
        let err =
            verify_cleared_swap(&cleared, VertexId::new(0), my_offer, SimTime::ZERO).unwrap_err();
        assert_eq!(err, VerifyError::MalformedKinds);
    }

    #[test]
    fn structurally_invalid_spec_detected() {
        let (mut cleared, offers) = cleared_triangle();
        cleared.spec.hashlocks.clear();
        let my_offer = &offers[cleared.offer_of_vertex[0].raw() as usize];
        let err =
            verify_cleared_swap(&cleared, VertexId::new(0), my_offer, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, VerifyError::Spec(_)));
        assert!(err.to_string().contains("invalid spec"));
    }
}
