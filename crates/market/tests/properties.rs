//! Property tests for epoch clearing: over random offer books (with random
//! cancellations), cleared cycles are pairwise vertex-disjoint, every
//! matched offer is consumed exactly once, arc kinds follow the givers, and
//! matched offers never leak into later epochs.

use std::collections::BTreeSet;

use proptest::prelude::*;
use swap_crypto::{MssKeypair, Secret};
use swap_market::{
    AssetKind, ClearingMode, ClearingService, LeaderStrategy, Offer, OfferId, OfferStatus,
};
use swap_sim::{Delta, SimTime};

/// A random offer book: each entry is `(gives, wants)` drawn from a small
/// kind alphabet (dense books with many cycles), plus a bitmask of offers
/// to cancel before clearing.
fn arb_book() -> impl Strategy<Value = (Vec<(u8, u8)>, u32)> {
    (proptest::collection::vec((0u8..5, 0u8..5), 0..24), any::<u32>())
}

fn offer(index: usize, gives: u8, wants: u8) -> Offer {
    // Distinct per-index seeds keep every key unique, which spec assembly
    // requires.
    let kp = MssKeypair::from_seed_with_height([index as u8 + 1; 32], 2);
    Offer {
        key: kp.public_key(),
        hashlock: Secret::from_bytes([index as u8 + 100; 32]).hashlock(),
        gives: AssetKind::new(format!("k{gives}")),
        wants: AssetKind::new(format!("k{wants}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One epoch over a random book upholds every structural invariant.
    #[test]
    fn epoch_clearing_invariants((book, cancel_mask) in arb_book()) {
        let mut svc = ClearingService::new();
        let ids: Vec<OfferId> =
            book.iter().enumerate().map(|(i, &(g, w))| svc.submit(offer(i, g, w))).collect();
        let mut cancelled = BTreeSet::new();
        for (i, &id) in ids.iter().enumerate() {
            if cancel_mask & (1 << (i % 32)) != 0 {
                svc.cancel(id).unwrap();
                cancelled.insert(id);
            }
        }
        let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();

        // Pairwise vertex-disjoint: no offer appears in two cleared swaps,
        // and no offer appears twice within one swap.
        let mut matched = BTreeSet::new();
        for swap in &swaps {
            for oid in &swap.offer_of_vertex {
                prop_assert!(matched.insert(*oid), "{} matched twice", oid);
            }
        }

        for swap in &swaps {
            let d = &swap.spec.digraph;
            // Cleared instances are simple trade cycles.
            prop_assert_eq!(d.vertex_count(), swap.offer_of_vertex.len());
            prop_assert_eq!(d.arc_count(), d.vertex_count());
            prop_assert!(d.is_strongly_connected());
            prop_assert_eq!(swap.arc_kinds.len(), d.arc_count());
            for arc in d.arcs() {
                let giver = svc.offer(swap.offer_of_vertex[arc.head.index()]).unwrap();
                let taker = svc.offer(swap.offer_of_vertex[arc.tail.index()]).unwrap();
                // Each arc carries exactly what its giver relinquishes,
                // which is exactly what its taker demanded.
                prop_assert_eq!(&swap.arc_kinds[arc.id.index()], &giver.gives);
                prop_assert_eq!(&swap.arc_kinds[arc.id.index()], &taker.wants);
            }
            // The published spec is valid and keyed by the matched offers.
            swap.spec.validate().unwrap();
            for (pos, oid) in swap.offer_of_vertex.iter().enumerate() {
                prop_assert_eq!(&swap.spec.keys[pos], &svc.offer(*oid).unwrap().key);
            }
        }

        // Lifecycle consistency: matched offers are Matched with this
        // epoch's swap id; cancelled ones stayed cancelled; the rest are
        // still open.
        for &id in &ids {
            let status = svc.status(id).unwrap();
            if cancelled.contains(&id) {
                prop_assert_eq!(status, OfferStatus::Cancelled);
                prop_assert!(!matched.contains(&id), "cancelled {} was matched", id);
            } else if matched.contains(&id) {
                prop_assert!(matches!(status, OfferStatus::Matched { epoch: 0, .. }));
            } else {
                prop_assert_eq!(status, OfferStatus::Open);
            }
        }
    }

    /// Matched offers are consumed exactly once, and clearing is
    /// *quiescent*: FIFO pairing restricted to the leftovers is unchanged,
    /// so a second epoch with no new offers can never find a new cycle.
    #[test]
    fn epochs_consume_matches_exactly_once((book, _) in arb_book()) {
        let mut svc = ClearingService::new();
        let ids: Vec<OfferId> =
            book.iter().enumerate().map(|(i, &(g, w))| svc.submit(offer(i, g, w))).collect();
        let first = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
        let first_matched: BTreeSet<OfferId> =
            first.iter().flat_map(|s| s.offer_of_vertex.iter().copied()).collect();
        let second = svc.clear(Delta::from_ticks(10), SimTime::from_ticks(100)).unwrap();
        prop_assert!(second.is_empty(), "re-clearing without new offers matched something");
        // Every matched offer is consumed; every other offer is still open.
        for &id in &ids {
            if first_matched.contains(&id) {
                prop_assert!(matches!(svc.status(id), Some(OfferStatus::Matched { epoch: 0, .. })));
            } else {
                prop_assert_eq!(svc.status(id), Some(OfferStatus::Open));
            }
        }
        prop_assert_eq!(svc.epoch(), 2);
    }
}

proptest! {
    // Each case drives two full services (one per mode) through three
    // epochs of real keygen-backed offers; fewer cases keep the suite's
    // wall time in budget.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ClearingMode::Indexed` is byte-equivalent to the `FullRescan`
    /// reference: the same offer/cancel/clear/resolve stream produces
    /// identical `ClearedSwap` sequences (specs, ids, vertex maps — pinned
    /// via `Debug`), identical lifecycle states, and identical
    /// reservation/deferral behavior, under both leader strategies and
    /// across epochs with same-party re-entry.
    #[test]
    fn indexed_clearing_equals_full_rescan(
        (book, cancel_mask) in arb_book(),
        resolve_mask in any::<u32>(),
        biased in any::<bool>(),
    ) {
        let strategy = if biased {
            LeaderStrategy::PreferSingleLeader
        } else {
            LeaderStrategy::MinimumExact
        };
        let run = |mode: ClearingMode| -> Vec<String> {
            let mut svc =
                ClearingService::new().with_mode(mode).with_leader_strategy(strategy);
            let mut log: Vec<String> = Vec::new();
            let ids: Vec<OfferId> =
                book.iter().enumerate().map(|(i, &(g, w))| svc.submit(offer(i, g, w))).collect();
            for (i, &id) in ids.iter().enumerate() {
                if cancel_mask & (1 << (i % 32)) != 0 {
                    svc.cancel(id).unwrap();
                }
            }
            let first = svc.clear(Delta::from_ticks(10), SimTime::ZERO).unwrap();
            // Resolve only some swaps: the rest stay in flight, so the
            // second epoch clears under live reservations.
            for (k, swap) in first.iter().enumerate() {
                if resolve_mask & (1 << (k % 32)) != 0 {
                    if k % 2 == 0 {
                        svc.settle_swap(swap.id).unwrap();
                    } else {
                        svc.refund_swap(swap.id).unwrap();
                    }
                }
            }
            // Second wave: every party returns with the mirrored trade —
            // reserved parties' offers must park and defer identically.
            let mut all_ids = ids;
            for (i, &(g, w)) in book.iter().enumerate() {
                all_ids.push(svc.submit(offer(i, w, g)));
            }
            let second = svc.clear(Delta::from_ticks(10), SimTime::from_ticks(50)).unwrap();
            // Release everything and clear once more: the deferred offers
            // wake the same way in both modes.
            for swap in first.iter().chain(&second) {
                let _ = svc.settle_swap(swap.id);
            }
            let third = svc.clear(Delta::from_ticks(10), SimTime::from_ticks(90)).unwrap();
            for swaps in [&first, &second, &third] {
                log.extend(swaps.iter().map(|s| format!("{s:?}")));
            }
            for &id in &all_ids {
                log.push(format!("{:?}", svc.status(id)));
            }
            log.push(format!("{:?}", svc.reserved_addresses()));
            log.push(format!(
                "open={} epoch={} deferred_from_reserved={}",
                svc.open_count(),
                svc.epoch(),
                svc.any_deferred_from(svc.reserved_addresses())
            ));
            log
        };
        prop_assert_eq!(run(ClearingMode::Indexed), run(ClearingMode::FullRescan));
    }
}
