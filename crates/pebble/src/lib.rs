//! The pebble games of §4.4, used to analyze protocol propagation.
//!
//! Herlihy reduces both protocol phases to pebble games on the swap digraph
//! `D = (V, A)` with leader set `L`:
//!
//! * the **lazy** game models Phase One (contract propagation): pebbles
//!   start on the arcs leaving each leader; arcs leaving `v` get pebbles
//!   once **every** arc entering `v` has one. Lemma 4.1: if `L` is a
//!   feedback vertex set, every arc is eventually pebbled.
//! * the **eager** game models Phase Two (secret dissemination, played on
//!   `Dᵀ`): one vertex `z` starts pebbled; arcs leaving `v` get pebbles once
//!   **any** arc entering `v` has one. Lemma 4.2: if `D` is strongly
//!   connected, every arc is eventually pebbled.
//!
//! Rounds model the Δ-bounded reaction delay, so Lemma 4.3's bound reads:
//! both games cover every arc within `diam(D)` rounds. The experiment
//! harness sweeps graph families to check this empirically.
//!
//! # Example
//!
//! ```
//! use std::collections::BTreeSet;
//! use swap_digraph::generators;
//! use swap_pebble::LazyPebbleGame;
//!
//! let d = generators::herlihy_three_party();
//! let leaders: BTreeSet<_> = [d.vertex_by_name("alice").unwrap()].into();
//! let mut game = LazyPebbleGame::new(&d, &leaders);
//! let rounds = game.run_to_completion().expect("leaders form an FVS");
//! assert!(game.all_pebbled());
//! assert!(rounds as usize <= d.diameter());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

use swap_digraph::{ArcId, Digraph, VertexId};

/// Outcome of running a pebble game to quiescence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameStalled {
    /// Number of arcs that never received a pebble.
    pub unpebbled: usize,
}

impl std::fmt::Display for GameStalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pebble game stalled with {} unpebbled arcs", self.unpebbled)
    }
}

impl std::error::Error for GameStalled {}

/// Common state and round logic shared by both games.
#[derive(Debug, Clone)]
struct GameState {
    digraph: Digraph,
    pebbled: Vec<bool>,
    rounds: u64,
}

impl GameState {
    fn new(digraph: &Digraph) -> Self {
        GameState { digraph: digraph.clone(), pebbled: vec![false; digraph.arc_count()], rounds: 0 }
    }

    fn pebble_out_arcs(&mut self, v: VertexId, newly: &mut Vec<ArcId>) {
        // Collect first: borrowck-friendly and avoids double counting.
        let targets: Vec<ArcId> = self
            .digraph
            .out_arcs(v)
            .filter(|a| !self.pebbled[a.id.index()])
            .map(|a| a.id)
            .collect();
        for id in targets {
            self.pebbled[id.index()] = true;
            newly.push(id);
        }
    }

    fn all_pebbled(&self) -> bool {
        self.pebbled.iter().all(|&p| p)
    }

    fn pebbled_count(&self) -> usize {
        self.pebbled.iter().filter(|&&p| p).count()
    }

    fn unpebbled_count(&self) -> usize {
        self.pebbled.len() - self.pebbled_count()
    }
}

/// The lazy pebble game (Phase One / contract propagation).
#[derive(Debug, Clone)]
pub struct LazyPebbleGame {
    state: GameState,
    leaders: BTreeSet<VertexId>,
    started: bool,
}

impl LazyPebbleGame {
    /// Sets up the game; no pebbles are placed until the first
    /// [`step`](Self::step).
    pub fn new(digraph: &Digraph, leaders: &BTreeSet<VertexId>) -> Self {
        LazyPebbleGame { state: GameState::new(digraph), leaders: leaders.clone(), started: false }
    }

    /// Runs one synchronous round, returning the arcs newly pebbled. The
    /// first round places the initial pebbles on arcs leaving each leader.
    pub fn step(&mut self) -> Vec<ArcId> {
        let mut newly = Vec::new();
        if !self.started {
            self.started = true;
            let leaders: Vec<VertexId> = self.leaders.iter().copied().collect();
            for l in leaders {
                self.state.pebble_out_arcs(l, &mut newly);
            }
        } else {
            // A follower's out-arcs fire when all its in-arcs are pebbled.
            // Evaluate enabledness against the state at round start.
            let snapshot = self.state.pebbled.clone();
            let enabled: Vec<VertexId> = self
                .state
                .digraph
                .vertices()
                .filter(|&v| !self.leaders.contains(&v))
                .filter(|&v| {
                    let mut entering = self.state.digraph.in_arcs(v).peekable();
                    entering.peek().is_some()
                        && self.state.digraph.in_arcs(v).all(|a| snapshot[a.id.index()])
                })
                .collect();
            for v in enabled {
                self.state.pebble_out_arcs(v, &mut newly);
            }
        }
        if !newly.is_empty() {
            self.state.rounds += 1;
        }
        newly
    }

    /// Steps until no progress, returning the number of rounds taken.
    ///
    /// # Errors
    ///
    /// Returns [`GameStalled`] if the game quiesces with unpebbled arcs —
    /// which Lemma 4.1 proves happens exactly when the leaders are *not* a
    /// feedback vertex set.
    pub fn run_to_completion(&mut self) -> Result<u64, GameStalled> {
        loop {
            let placed = self.step();
            if self.all_pebbled() {
                return Ok(self.state.rounds);
            }
            if placed.is_empty() {
                return Err(GameStalled { unpebbled: self.state.unpebbled_count() });
            }
        }
    }

    /// Whether every arc has a pebble.
    pub fn all_pebbled(&self) -> bool {
        self.state.all_pebbled()
    }

    /// Whether the given arc has a pebble.
    pub fn is_pebbled(&self, arc: ArcId) -> bool {
        self.state.pebbled[arc.index()]
    }

    /// Number of pebbled arcs.
    pub fn pebbled_count(&self) -> usize {
        self.state.pebbled_count()
    }

    /// Rounds in which at least one pebble was placed.
    pub fn rounds(&self) -> u64 {
        self.state.rounds
    }
}

/// The eager pebble game (Phase Two / secret dissemination).
#[derive(Debug, Clone)]
pub struct EagerPebbleGame {
    state: GameState,
    start_vertex: VertexId,
    started: bool,
}

impl EagerPebbleGame {
    /// Sets up the game with the initial pebble on vertex `z`.
    pub fn new(digraph: &Digraph, z: VertexId) -> Self {
        EagerPebbleGame { state: GameState::new(digraph), start_vertex: z, started: false }
    }

    /// Runs one synchronous round, returning the arcs newly pebbled.
    pub fn step(&mut self) -> Vec<ArcId> {
        let mut newly = Vec::new();
        if !self.started {
            self.started = true;
            let z = self.start_vertex;
            self.state.pebble_out_arcs(z, &mut newly);
        } else {
            let snapshot = self.state.pebbled.clone();
            let enabled: Vec<VertexId> = self
                .state
                .digraph
                .vertices()
                .filter(|&v| self.state.digraph.in_arcs(v).any(|a| snapshot[a.id.index()]))
                .collect();
            for v in enabled {
                self.state.pebble_out_arcs(v, &mut newly);
            }
        }
        if !newly.is_empty() {
            self.state.rounds += 1;
        }
        newly
    }

    /// Steps until no progress, returning the number of rounds taken.
    ///
    /// # Errors
    ///
    /// Returns [`GameStalled`] if arcs remain unpebbled — which Lemma 4.2
    /// proves happens only when `D` is not strongly connected.
    pub fn run_to_completion(&mut self) -> Result<u64, GameStalled> {
        loop {
            let placed = self.step();
            if self.all_pebbled() {
                return Ok(self.state.rounds);
            }
            if placed.is_empty() {
                return Err(GameStalled { unpebbled: self.state.unpebbled_count() });
            }
        }
    }

    /// Whether every arc has a pebble.
    pub fn all_pebbled(&self) -> bool {
        self.state.all_pebbled()
    }

    /// Whether the given arc has a pebble.
    pub fn is_pebbled(&self, arc: ArcId) -> bool {
        self.state.pebbled[arc.index()]
    }

    /// Number of pebbled arcs.
    pub fn pebbled_count(&self) -> usize {
        self.state.pebbled_count()
    }

    /// Rounds in which at least one pebble was placed.
    pub fn rounds(&self) -> u64 {
        self.state.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_digraph::{generators, FeedbackVertexSet};

    fn leaders_of(d: &Digraph) -> BTreeSet<VertexId> {
        FeedbackVertexSet::minimum(d).expect("small graph").into_vertices()
    }

    #[test]
    fn lazy_covers_three_party_cycle() {
        let d = generators::herlihy_three_party();
        let leaders = leaders_of(&d);
        let mut game = LazyPebbleGame::new(&d, &leaders);
        let rounds = game.run_to_completion().unwrap();
        assert!(game.all_pebbled());
        assert_eq!(game.pebbled_count(), 3);
        // C₃: leader's arc round 1, then two more rounds.
        assert_eq!(rounds, 3);
        assert!(rounds as usize <= d.diameter());
    }

    #[test]
    fn lazy_round_by_round_frontier() {
        // Figure 8's concurrent propagation, on the two-leader triangle.
        let d = generators::two_leader_triangle();
        let leaders = leaders_of(&d);
        assert_eq!(leaders.len(), 2);
        let mut game = LazyPebbleGame::new(&d, &leaders);
        let first = game.step();
        // Both leaders' out-arcs at once: 2 leaders × 2 out-arcs.
        assert_eq!(first.len(), 4);
        let second = game.step();
        assert_eq!(second.len(), 2);
        assert!(game.all_pebbled());
    }

    #[test]
    fn lazy_stalls_without_fvs_leaders() {
        // Lemma 4.1's converse: on the two-leader triangle with only one
        // leader, the remaining 2-cycle never fires.
        let d = generators::two_leader_triangle();
        let one_leader: BTreeSet<_> = [VertexId::new(0)].into();
        let mut game = LazyPebbleGame::new(&d, &one_leader);
        let err = game.run_to_completion().unwrap_err();
        assert!(err.unpebbled > 0);
        assert!(!game.all_pebbled());
        assert!(err.to_string().contains("stalled"));
    }

    #[test]
    fn lazy_respects_diameter_bound_across_families() {
        for d in [
            generators::cycle(7),
            generators::complete(5),
            generators::star(4),
            generators::flower(3, 3),
            generators::two_leader_triangle(),
        ] {
            let leaders = leaders_of(&d);
            let mut game = LazyPebbleGame::new(&d, &leaders);
            let rounds = game.run_to_completion().unwrap_or_else(|e| panic!("{e}"));
            assert!(
                rounds as usize <= d.diameter(),
                "lazy game took {rounds} rounds on digraph with diam {}",
                d.diameter()
            );
        }
    }

    #[test]
    fn lazy_on_random_strongly_connected() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for n in [4usize, 6, 8, 10, 12] {
            let d = generators::random_strongly_connected(n, 0.25, &mut rng);
            let leaders = leaders_of(&d);
            let mut game = LazyPebbleGame::new(&d, &leaders);
            let rounds = game.run_to_completion().unwrap();
            assert!(rounds as usize <= d.diameter(), "n={n}");
        }
    }

    #[test]
    fn eager_covers_cycle_from_any_start() {
        let d = generators::cycle(6);
        for v in d.vertices() {
            let mut game = EagerPebbleGame::new(&d, v);
            let rounds = game.run_to_completion().unwrap();
            assert!(game.all_pebbled(), "start {v}");
            assert!(rounds as usize <= d.diameter());
        }
    }

    #[test]
    fn eager_on_transpose_models_phase_two() {
        // Phase Two disseminates secrets on Dᵀ (Lemma 4.6).
        let d = generators::herlihy_three_party().transpose();
        let alice = d.vertex_by_name("alice").unwrap();
        let mut game = EagerPebbleGame::new(&d, alice);
        let rounds = game.run_to_completion().unwrap();
        assert_eq!(rounds, 3);
    }

    #[test]
    fn eager_stalls_on_not_strongly_connected() {
        // From the sink side of a one-way pair, nothing propagates back.
        let d = generators::one_way_pair();
        let y = d.vertex_by_name("y").unwrap();
        let mut game = EagerPebbleGame::new(&d, y);
        let err = game.run_to_completion().unwrap_err();
        assert_eq!(err.unpebbled, 1);
    }

    #[test]
    fn eager_faster_than_lazy_on_complete_digraph() {
        // Eager fires on ANY entering pebble, so it floods K_n in 2 rounds;
        // lazy needs all entering arcs and leaders are n-1 of n vertexes.
        let d = generators::complete(6);
        let mut eager = EagerPebbleGame::new(&d, VertexId::new(0));
        let eager_rounds = eager.run_to_completion().unwrap();
        assert!(eager_rounds <= 2);
        let leaders = leaders_of(&d);
        let mut lazy = LazyPebbleGame::new(&d, &leaders);
        let lazy_rounds = lazy.run_to_completion().unwrap();
        assert!(eager_rounds <= lazy_rounds);
    }

    #[test]
    fn eager_respects_diameter_bound_across_families() {
        for d in [
            generators::cycle(9),
            generators::complete(5),
            generators::star(5),
            generators::flower(2, 4),
        ] {
            let mut game = EagerPebbleGame::new(&d, VertexId::new(0));
            let rounds = game.run_to_completion().unwrap();
            assert!(rounds as usize <= d.diameter());
        }
    }

    #[test]
    fn is_pebbled_tracks_individual_arcs() {
        let d = generators::herlihy_three_party();
        let leaders = leaders_of(&d);
        let mut game = LazyPebbleGame::new(&d, &leaders);
        let first = game.step();
        assert_eq!(first.len(), 1);
        assert!(game.is_pebbled(first[0]));
        let all: Vec<ArcId> = d.arcs().map(|a| a.id).collect();
        assert!(all.iter().any(|&a| !game.is_pebbled(a)));
    }

    #[test]
    fn multigraph_arcs_pebble_independently() {
        let d = generators::multigraph_pair();
        let leaders = leaders_of(&d);
        let mut game = LazyPebbleGame::new(&d, &leaders);
        game.run_to_completion().unwrap();
        assert_eq!(game.pebbled_count(), 3);
    }
}
