//! Logical time: [`SimTime`], [`SimDuration`], and the paper's Δ ([`Delta`]).
//!
//! All protocol-level timing in this workspace is expressed in discrete
//! *ticks*. A tick has no physical meaning; what matters is the ratio between
//! elapsed ticks and Δ, because every bound in the paper (contract timelocks,
//! the 2·diam(D)·Δ completion bound, pebble-game convergence) is stated as a
//! multiple of Δ.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in ticks since the simulation epoch.
///
/// `SimTime` is a newtype over `u64` so it cannot be confused with a
/// [`SimDuration`] (an *interval*). Points and intervals obey the usual
/// affine arithmetic: `SimTime + SimDuration = SimTime`,
/// `SimTime - SimTime = SimDuration`.
///
/// # Example
///
/// ```
/// use swap_sim::{SimDuration, SimTime};
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_ticks(10);
/// assert_eq!(later - start, SimDuration::from_ticks(10));
/// assert!(later > start);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (tick zero).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time at the given absolute tick.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The absolute tick count of this instant.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration: clamps at [`SimTime::MAX`].
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

/// A span of simulated time, measured in ticks.
///
/// # Example
///
/// ```
/// use swap_sim::SimDuration;
/// let d = SimDuration::from_ticks(4) * 3;
/// assert_eq!(d.ticks(), 12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of the given number of ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// The number of ticks in this duration.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

/// The paper's synchrony parameter Δ (§2.2): a duration long enough for one
/// party to publish a contract (or change a contract's state) on any
/// blockchain, *and* for every other party to confirm that change.
///
/// All timelocks in the swap protocol are integer multiples of Δ, so `Delta`
/// exposes [`Delta::times`] as the primary operation.
///
/// # Example
///
/// ```
/// use swap_sim::{Delta, SimTime};
/// let delta = Delta::from_ticks(10);
/// let start = SimTime::ZERO;
/// // Timelock "6Δ after start", as in the paper's three-way swap.
/// let timeout = start + delta.times(6);
/// assert_eq!(timeout.ticks(), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Delta(SimDuration);

impl Delta {
    /// Creates a Δ of the given tick count.
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is zero: a zero Δ would make publish-then-confirm
    /// instantaneous and every timelock degenerate.
    pub fn from_ticks(ticks: u64) -> Self {
        assert!(ticks > 0, "Delta must be positive");
        Delta(SimDuration(ticks))
    }

    /// The underlying duration of one Δ.
    pub const fn duration(self) -> SimDuration {
        self.0
    }

    /// The number of ticks in one Δ.
    pub const fn ticks(self) -> u64 {
        self.0 .0
    }

    /// `n`·Δ as a duration — the way the paper writes every timelock.
    pub fn times(self, n: u64) -> SimDuration {
        self.0 * n
    }

    /// How many whole Δ intervals fit in `d` (rounding down).
    pub fn intervals_in(self, d: SimDuration) -> u64 {
        d.0 / self.0 .0
    }
}

impl Default for Delta {
    /// A conventional default of 10 ticks per Δ, convenient for tests.
    fn default() -> Self {
        Delta::from_ticks(10)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ={}", self.0 .0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_ticks(5) + SimDuration::from_ticks(7);
        assert_eq!(t.ticks(), 12);
    }

    #[test]
    fn time_minus_time_is_duration() {
        let a = SimTime::from_ticks(20);
        let b = SimTime::from_ticks(5);
        assert_eq!(a - b, SimDuration::from_ticks(15));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_underflow_panics() {
        let _ = SimTime::from_ticks(1) - SimDuration::from_ticks(2);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_ticks(5)), SimTime::MAX);
        assert_eq!(
            SimTime::from_ticks(3).saturating_since(SimTime::from_ticks(9)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_ticks(3).saturating_sub(SimDuration::from_ticks(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_ticks(6);
        assert_eq!((d * 4).ticks(), 24);
        assert_eq!((d / 2).ticks(), 3);
        assert_eq!((d + d).ticks(), 12);
        assert_eq!((d - SimDuration::from_ticks(1)).ticks(), 5);
        assert!(!d.is_zero());
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn delta_times() {
        let delta = Delta::from_ticks(10);
        assert_eq!(delta.times(6).ticks(), 60);
        assert_eq!(delta.intervals_in(SimDuration::from_ticks(59)), 5);
        assert_eq!(delta.intervals_in(SimDuration::from_ticks(60)), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delta_rejected() {
        let _ = Delta::from_ticks(0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert_eq!(SimTime::from_ticks(3).to_string(), "t=3");
        assert_eq!(SimDuration::from_ticks(3).to_string(), "3 ticks");
        assert_eq!(Delta::from_ticks(3).to_string(), "Δ=3");
    }

    #[test]
    fn default_delta_is_positive() {
        assert!(Delta::default().ticks() > 0);
    }
}
