//! Deterministic event queue and simulation driver.
//!
//! The queue orders events by `(time, insertion sequence)`, so two events
//! scheduled for the same tick are delivered in the order they were
//! scheduled. Determinism matters here: every experiment in the harness must
//! be reproducible from a seed, and the safety arguments in the paper are
//! checked by exhaustively exploring failure schedules.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::{SimDuration, SimTime};

/// An event that has been scheduled for a particular instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Tie-break sequence number (FIFO among same-time events).
    seq: u64,
    /// The event payload.
    pub payload: E,
}

impl<E> ScheduledEvent<E> {
    /// The FIFO sequence number assigned at scheduling time.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    // Reversed so the max-heap `BinaryHeap` pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// # Example
///
/// ```
/// use swap_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ticks(2), "b");
/// q.schedule(SimTime::from_ticks(1), "a");
/// q.schedule(SimTime::from_ticks(2), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to fire at `time`. Events at the same instant are
    /// delivered in scheduling order.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Why a [`Simulation`] run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The event queue drained: nothing left to do.
    QueueDrained,
    /// The configured horizon was reached before the queue drained.
    HorizonReached,
    /// The handler requested an early stop.
    Halted,
    /// The event budget (maximum number of dispatched events) was exhausted.
    BudgetExhausted,
}

/// What the event handler tells the driver after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep running.
    Continue,
    /// Stop immediately (reported as [`StopReason::Halted`]).
    Halt,
}

/// A simple single-threaded discrete-event simulation driver.
///
/// The driver owns the clock and the queue; domain state lives in the closure
/// environment (or in a state struct the caller threads through). Handlers
/// may schedule further events at or after the current instant.
///
/// # Example
///
/// ```
/// use swap_sim::{Simulation, SimDuration, SimTime, StopReason};
///
/// let mut sim = Simulation::new();
/// sim.schedule(SimTime::ZERO, 1u32);
/// let mut seen = Vec::new();
/// let reason = sim.run(|now, ev, sched| {
///     seen.push((now.ticks(), ev));
///     if ev < 3 {
///         sched.schedule(now + SimDuration::from_ticks(2), ev + 1);
///     }
///     swap_sim::event::Control::Continue
/// });
/// assert_eq!(reason, StopReason::QueueDrained);
/// assert_eq!(seen, vec![(0, 1), (2, 2), (4, 3)]);
/// ```
#[derive(Debug)]
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: Option<SimTime>,
    budget: Option<u64>,
    dispatched: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates a simulation starting at [`SimTime::ZERO`] with no horizon.
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: None,
            budget: None,
            dispatched: 0,
        }
    }

    /// Sets an inclusive time horizon: events strictly after it never fire.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Sets a maximum number of dispatched events (runaway protection).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules an event before or during the run.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the simulated past — events cannot rewrite
    /// history.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(time >= self.now, "cannot schedule an event in the past");
        self.queue.schedule(time, payload);
    }

    /// Schedules an event `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        let time = self.now + delay;
        self.queue.schedule(time, payload);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pops the earliest runnable event, advancing the clock to it.
    ///
    /// This is the pull-style driver: where [`Simulation::run`] inverts
    /// control into a handler closure, `poll` lets the caller own the loop —
    /// an engine can hold the simulation *and* its domain state in one
    /// struct, handle each event with ordinary `&mut self` methods, schedule
    /// follow-ups directly on the simulation between polls, and stop on any
    /// domain condition it likes.
    ///
    /// # Errors
    ///
    /// Returns the [`StopReason`] when no event can run: the queue drained,
    /// the next event lies beyond the horizon, or the dispatch budget is
    /// exhausted ([`StopReason::Halted`] never originates here — halting is
    /// the caller's decision in pull style).
    ///
    /// # Example
    ///
    /// ```
    /// use swap_sim::{Simulation, SimDuration, SimTime, StopReason};
    ///
    /// let mut sim = Simulation::new();
    /// sim.schedule(SimTime::ZERO, 1u32);
    /// let mut seen = Vec::new();
    /// loop {
    ///     let ev = match sim.poll() {
    ///         Ok(ev) => ev,
    ///         Err(reason) => {
    ///             assert_eq!(reason, StopReason::QueueDrained);
    ///             break;
    ///         }
    ///     };
    ///     seen.push((ev.time.ticks(), ev.payload));
    ///     if ev.payload < 3 {
    ///         sim.schedule_in(SimDuration::from_ticks(2), ev.payload + 1);
    ///     }
    /// }
    /// assert_eq!(seen, vec![(0, 1), (2, 2), (4, 3)]);
    /// ```
    pub fn poll(&mut self) -> Result<ScheduledEvent<E>, StopReason> {
        let Some(next_time) = self.queue.next_time() else {
            return Err(StopReason::QueueDrained);
        };
        if let Some(h) = self.horizon {
            if next_time > h {
                return Err(StopReason::HorizonReached);
            }
        }
        if let Some(b) = self.budget {
            if self.dispatched >= b {
                return Err(StopReason::BudgetExhausted);
            }
        }
        let ev = self.queue.pop().expect("peeked event must exist");
        self.now = ev.time;
        self.dispatched += 1;
        Ok(ev)
    }

    /// Runs until the queue drains, the horizon passes, the budget runs out,
    /// or the handler halts. The handler receives the current time, the
    /// event, and a scheduler for follow-up events.
    pub fn run<F>(&mut self, mut handler: F) -> StopReason
    where
        F: FnMut(SimTime, E, &mut Scheduler<'_, E>) -> Control,
    {
        loop {
            let ev = match self.poll() {
                Ok(ev) => ev,
                Err(reason) => return reason,
            };
            let mut sched = Scheduler { queue: &mut self.queue, now: self.now };
            match handler(self.now, ev.payload, &mut sched) {
                Control::Continue => {}
                Control::Halt => return StopReason::Halted,
            }
        }
    }
}

/// Restricted view of the queue handed to event handlers: they may only
/// schedule *future* (or same-instant) events.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<E> Scheduler<'_, E> {
    /// Schedules a follow-up event at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current instant.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(time >= self.now, "cannot schedule an event in the past");
        self.queue.schedule(time, payload);
    }

    /// The instant of the event currently being handled.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    #[test]
    fn fifo_within_same_tick() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ticks(7), i);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        let expected: Vec<i32> = (0..100).collect();
        assert_eq!(drained, expected);
    }

    #[test]
    fn earliest_first_across_ticks() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(9), 'c');
        q.schedule(SimTime::from_ticks(1), 'a');
        q.schedule(SimTime::from_ticks(5), 'b');
        assert_eq!(q.next_time(), Some(SimTime::from_ticks(1)));
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        let drained: Vec<char> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(drained, vec!['a', 'b', 'c']);
        assert!(q.is_empty());
    }

    #[test]
    fn run_to_drain() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        let reason = sim.run(|_, ev, sched| {
            count += 1;
            if ev < 9 {
                sched.schedule(sched.now() + SimDuration::from_ticks(1), ev + 1);
            }
            Control::Continue
        });
        assert_eq!(reason, StopReason::QueueDrained);
        assert_eq!(count, 10);
        assert_eq!(sim.now(), SimTime::from_ticks(9));
        assert_eq!(sim.dispatched(), 10);
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = Simulation::new().with_horizon(SimTime::from_ticks(4));
        sim.schedule(SimTime::ZERO, ());
        let mut fired = 0;
        let reason = sim.run(|now, (), sched| {
            fired += 1;
            sched.schedule(now + SimDuration::from_ticks(2), ());
            Control::Continue
        });
        assert_eq!(reason, StopReason::HorizonReached);
        // Fires at t=0, 2, 4; the event at t=6 exceeds the horizon.
        assert_eq!(fired, 3);
    }

    #[test]
    fn handler_can_halt() {
        let mut sim = Simulation::new();
        for i in 0..10 {
            sim.schedule(SimTime::from_ticks(i), i);
        }
        let mut last = None;
        let reason = sim.run(|_, ev, _| {
            last = Some(ev);
            if ev == 3 {
                Control::Halt
            } else {
                Control::Continue
            }
        });
        assert_eq!(reason, StopReason::Halted);
        assert_eq!(last, Some(3));
    }

    #[test]
    fn budget_exhaustion() {
        let mut sim = Simulation::new().with_budget(5);
        sim.schedule(SimTime::ZERO, ());
        let reason = sim.run(|now, (), sched| {
            sched.schedule(now + SimDuration::from_ticks(1), ());
            Control::Continue
        });
        assert_eq!(reason, StopReason::BudgetExhausted);
        assert_eq!(sim.dispatched(), 5);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_ticks(5), ());
        sim.run(|_, (), sched| {
            // now == 5; scheduling at 4 must panic.
            sched.schedule(SimTime::from_ticks(4), ());
            Control::Continue
        });
    }

    #[test]
    fn poll_pull_style_matches_run_order() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_ticks(2), 'b');
        sim.schedule(SimTime::from_ticks(1), 'a');
        let mut order = Vec::new();
        while let Ok(ev) = sim.poll() {
            order.push(ev.payload);
            if ev.payload == 'a' {
                // Follow-ups scheduled between polls, directly on the sim.
                sim.schedule_in(SimDuration::from_ticks(3), 'c');
            }
        }
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), SimTime::from_ticks(4));
        assert_eq!(sim.dispatched(), 3);
        assert_eq!(sim.poll().unwrap_err(), StopReason::QueueDrained);
    }

    #[test]
    fn poll_respects_horizon_and_budget() {
        let mut sim = Simulation::new().with_horizon(SimTime::from_ticks(3));
        sim.schedule(SimTime::from_ticks(2), ());
        sim.schedule(SimTime::from_ticks(5), ());
        assert!(sim.poll().is_ok());
        assert_eq!(sim.poll().unwrap_err(), StopReason::HorizonReached);

        let mut sim = Simulation::new().with_budget(1);
        sim.schedule(SimTime::ZERO, ());
        sim.schedule(SimTime::from_ticks(1), ());
        assert!(sim.poll().is_ok());
        assert_eq!(sim.poll().unwrap_err(), StopReason::BudgetExhausted);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn same_instant_rescheduling_allowed() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_ticks(3), 0u8);
        let mut order = Vec::new();
        sim.run(|now, ev, sched| {
            order.push(ev);
            if ev == 0 {
                sched.schedule(now, 1);
            }
            Control::Continue
        });
        assert_eq!(order, vec![0, 1]);
    }
}
