//! Discrete-event simulation kernel for the atomic cross-chain swap system.
//!
//! Herlihy's analysis (§2.2 of the paper) assumes a single synchrony
//! parameter: a known duration Δ long enough for one party to publish a
//! contract on any blockchain (or change a contract's state) and for every
//! other party to confirm that the change happened. This crate provides the
//! substrate that makes Δ a *measurable, checkable* quantity:
//!
//! * [`SimTime`] / [`SimDuration`] — a discrete logical clock in ticks,
//! * [`Delta`] — the paper's Δ, expressed in ticks,
//! * [`EventQueue`] — a deterministic priority queue of timestamped events,
//! * [`Simulation`] — a driver that pops events in (time, FIFO) order and
//!   dispatches them to a handler,
//! * [`SimRng`] — seeded, stream-splittable randomness so every experiment
//!   is reproducible bit-for-bit,
//! * [`TraceLog`] — a structured record of everything that happened, used by
//!   the experiment harness to regenerate the paper's figures.
//!
//! # Example
//!
//! ```
//! use swap_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_ticks(5), "later");
//! q.schedule(SimTime::ZERO, "now");
//! assert_eq!(q.pop().map(|e| e.payload), Some("now"));
//! assert_eq!(q.pop().map(|e| e.payload), Some("later"));
//! assert!(q.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod rng;
pub mod trace;

pub use clock::{Delta, SimDuration, SimTime};
pub use event::{EventQueue, ScheduledEvent, Simulation, StopReason};
pub use rng::SimRng;
pub use trace::{TraceEntry, TraceLog};
