//! Seeded, splittable randomness for reproducible experiments.
//!
//! Every workload generator and adversarial schedule in the experiment
//! harness draws from a [`SimRng`] derived from a single master seed, so any
//! run can be replayed exactly. Sub-streams are derived with a SplitMix64
//! finalizer over `(seed, label)` so adding a new consumer never perturbs the
//! draws seen by existing ones.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source tied to a master seed.
///
/// # Example
///
/// ```
/// use rand::RngCore;
/// use swap_sim::SimRng;
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Sub-streams are independent of draw order on the parent.
/// let s1 = SimRng::from_seed(42).stream("chains").next_u64();
/// let mut parent = SimRng::from_seed(42);
/// parent.next_u64();
/// let s2 = parent.stream("chains").next_u64();
/// assert_eq!(s1, s2);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit master seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng { seed, inner: StdRng::seed_from_u64(splitmix64(seed)) }
    }

    /// The master seed this generator was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-stream named `label`.
    ///
    /// The sub-stream depends only on `(master seed, label)`, never on how
    /// many values have been drawn from `self`.
    pub fn stream(&self, label: &str) -> SimRng {
        let mut h = self.seed;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        SimRng::from_seed(h)
    }

    /// Derives an independent sub-stream indexed by an integer, e.g. one per
    /// simulated party.
    pub fn stream_indexed(&self, label: &str, index: u64) -> SimRng {
        let base = self.stream(label);
        SimRng::from_seed(splitmix64(base.seed ^ index.rotate_left(17)))
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "between requires lo <= hi");
        self.inner.gen_range(lo..=hi)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Returns 32 random bytes (handy for secrets and seeds).
    pub fn bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.inner.fill_bytes(&mut out);
        out
    }

    /// Chooses a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64 finalizer: a strong 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent streams should almost never collide");
    }

    #[test]
    fn streams_are_order_independent() {
        let direct = SimRng::from_seed(99).stream("x").next_u64();
        let mut parent = SimRng::from_seed(99);
        for _ in 0..10 {
            parent.next_u64();
        }
        assert_eq!(parent.stream("x").next_u64(), direct);
    }

    #[test]
    fn distinct_labels_distinct_streams() {
        let a = SimRng::from_seed(5).stream("alpha").next_u64();
        let b = SimRng::from_seed(5).stream("beta").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_distinct() {
        let a = SimRng::from_seed(5).stream_indexed("party", 0).next_u64();
        let b = SimRng::from_seed(5).stream_indexed("party", 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn between_inclusive() {
        let mut rng = SimRng::from_seed(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = rng.between(2, 4);
            assert!((2..=4).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 4;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        SimRng::from_seed(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::from_seed(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..50).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn choose_empty_none() {
        let mut rng = SimRng::from_seed(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert!(rng.choose(&[42]).copied() == Some(42));
    }

    #[test]
    fn bytes32_deterministic() {
        let a = SimRng::from_seed(77).bytes32();
        let b = SimRng::from_seed(77).bytes32();
        assert_eq!(a, b);
        assert_ne!(a, [0u8; 32]);
    }
}
