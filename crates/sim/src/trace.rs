//! Structured execution traces.
//!
//! The experiment harness regenerates the paper's figures (e.g. the
//! deploy/trigger timeline of Figures 1–2 and the two-leader propagation of
//! Figure 8) from traces recorded here rather than from ad-hoc printouts, so
//! the same trace can be asserted on in tests and rendered by the `experiments`
//! binary.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::clock::SimTime;

/// One timestamped, categorized trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the event happened.
    pub time: SimTime,
    /// Who did it (party name, chain name, "sim", ...).
    pub actor: String,
    /// Machine-friendly category, e.g. `contract.published`.
    pub kind: String,
    /// Human-friendly details.
    pub detail: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {}: {}", self.time, self.actor, self.kind, self.detail)
    }
}

/// An append-only log of [`TraceEntry`] records.
///
/// # Example
///
/// ```
/// use swap_sim::{SimTime, TraceLog};
/// let mut log = TraceLog::new();
/// log.record(SimTime::from_ticks(3), "alice", "contract.published", "arc A->B");
/// assert_eq!(log.entries_of_kind("contract.published").count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends an entry.
    pub fn record(
        &mut self,
        time: SimTime,
        actor: impl Into<String>,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.entries.push(TraceEntry {
            time,
            actor: actor.into(),
            kind: kind.into(),
            detail: detail.into(),
        });
    }

    /// All entries in insertion order (which is also time order when the
    /// producer is a discrete-event simulation).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Iterator over entries with the given `kind`.
    pub fn entries_of_kind<'a>(
        &'a self,
        kind: &'a str,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Iterator over entries by the given `actor`.
    pub fn entries_of_actor<'a>(
        &'a self,
        actor: &'a str,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.actor == actor)
    }

    /// The time of the last entry, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.entries.last().map(|e| e.time)
    }

    /// The time of the first entry matching `kind`, if any.
    pub fn first_time_of_kind(&self, kind: &str) -> Option<SimTime> {
        self.entries_of_kind(kind).next().map(|e| e.time)
    }

    /// The time of the last entry matching `kind`, if any.
    pub fn last_time_of_kind(&self, kind: &str) -> Option<SimTime> {
        self.entries_of_kind(kind).last().map(|e| e.time)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another log into this one, keeping global time order stable by
    /// a stable sort on time (insertion order breaks ties).
    pub fn merge(&mut self, other: TraceLog) {
        self.entries.extend(other.entries);
        self.entries.sort_by_key(|e| e.time);
    }

    /// Renders the log as a plain-text timeline (one line per entry).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

impl Extend<TraceEntry> for TraceLog {
    fn extend<T: IntoIterator<Item = TraceEntry>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

impl FromIterator<TraceEntry> for TraceLog {
    fn from_iter<T: IntoIterator<Item = TraceEntry>>(iter: T) -> Self {
        TraceLog { entries: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a TraceLog {
    type Item = &'a TraceEntry;
    type IntoIter = std::slice::Iter<'a, TraceEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceLog {
        let mut log = TraceLog::new();
        log.record(SimTime::from_ticks(1), "alice", "contract.published", "altcoin arc");
        log.record(SimTime::from_ticks(2), "bob", "contract.published", "bitcoin arc");
        log.record(SimTime::from_ticks(4), "alice", "secret.revealed", "s");
        log
    }

    #[test]
    fn record_and_filter() {
        let log = sample();
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.entries_of_kind("contract.published").count(), 2);
        assert_eq!(log.entries_of_actor("alice").count(), 2);
    }

    #[test]
    fn first_and_last_times() {
        let log = sample();
        assert_eq!(log.first_time_of_kind("contract.published"), Some(SimTime::from_ticks(1)));
        assert_eq!(log.last_time_of_kind("contract.published"), Some(SimTime::from_ticks(2)));
        assert_eq!(log.last_time(), Some(SimTime::from_ticks(4)));
        assert_eq!(log.first_time_of_kind("missing"), None);
    }

    #[test]
    fn merge_sorts_by_time() {
        let mut a = TraceLog::new();
        a.record(SimTime::from_ticks(5), "x", "k", "later");
        let mut b = TraceLog::new();
        b.record(SimTime::from_ticks(1), "y", "k", "earlier");
        a.merge(b);
        assert_eq!(a.entries()[0].detail, "earlier");
        assert_eq!(a.entries()[1].detail, "later");
    }

    #[test]
    fn render_contains_all_entries() {
        let log = sample();
        let text = log.render();
        assert!(text.contains("alice"));
        assert!(text.contains("secret.revealed"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn collect_and_iterate() {
        let log = sample();
        let copied: TraceLog = log.entries().iter().cloned().collect();
        assert_eq!(copied, log);
        let times: Vec<u64> = (&log).into_iter().map(|e| e.time.ticks()).collect();
        assert_eq!(times, vec![1, 2, 4]);
    }

    #[test]
    fn serde_roundtrip() {
        // Uses serde's derived impls via a JSON-free check: Debug equality
        // after a clone is trivial, so instead round-trip through the
        // serde_test-style token stream is unavailable; assert the derive
        // exists by serializing to a string with `format!` on Debug.
        let log = sample();
        let cloned = log.clone();
        assert_eq!(log, cloned);
    }

    #[test]
    fn display_format() {
        let e = TraceEntry {
            time: SimTime::from_ticks(9),
            actor: "carol".into(),
            kind: "claim".into(),
            detail: "cadillac".into(),
        };
        assert_eq!(e.to_string(), "[t=9] carol claim: cadillac");
    }
}
