//! Property tests for the simulation kernel.

use proptest::prelude::*;
use swap_sim::{EventQueue, SimDuration, SimRng, SimTime};

proptest! {
    /// Draining the queue always yields events in nondecreasing time order,
    /// and FIFO order among equal times.
    #[test]
    fn queue_drains_in_time_then_fifo_order(times in prop::collection::vec(0u64..100, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), i);
        }
        let drained: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|e| (e.time.ticks(), e.payload)).collect();
        prop_assert_eq!(drained.len(), times.len());
        for w in drained.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at t={}", w[0].0);
            }
        }
    }

    /// Time arithmetic is consistent: (t + d) - t == d for all in-range
    /// values.
    #[test]
    fn time_arithmetic_roundtrip(base in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_ticks(base);
        let dur = SimDuration::from_ticks(d);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!((t + dur) - dur, t);
    }

    /// Seeded RNG streams are deterministic and label-independent.
    #[test]
    fn rng_streams_deterministic(seed in any::<u64>(), draws in 0usize..32) {
        use rand::RngCore;
        let mut a = SimRng::from_seed(seed);
        for _ in 0..draws {
            a.next_u64();
        }
        let from_dirty = a.stream("probe").next_u64();
        let from_fresh = SimRng::from_seed(seed).stream("probe").next_u64();
        prop_assert_eq!(from_dirty, from_fresh);
    }

    /// below(n) is always within bounds.
    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Shuffling preserves the multiset.
    #[test]
    fn shuffle_preserves_elements(seed in any::<u64>(), mut v in prop::collection::vec(0u32..50, 0..40)) {
        let mut rng = SimRng::from_seed(seed);
        let mut expected = v.clone();
        rng.shuffle(&mut v);
        expected.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }
}
