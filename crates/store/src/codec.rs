//! Primitive binary codec: little-endian integers, length-prefixed
//! strings, 32-byte arrays, and the CRC32 used to checksum every frame.
//!
//! [`Encoder`] appends to an owned buffer; [`Decoder`] walks a borrowed
//! slice with a cursor and returns typed [`DecodeError`]s instead of
//! panicking, so a truncated or corrupt log surfaces as data, not as a
//! crash during recovery.

use std::fmt;

/// Everything that can go wrong while decoding a record or snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value being read was complete.
    UnexpectedEnd,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// A frame's CRC32 did not match its header + payload bytes.
    BadChecksum,
    /// A frame did not start with the `b"SW"` magic.
    BadMagic,
    /// A frame's format version is newer than this decoder understands.
    BadVersion(u16),
    /// A record kind code had no corresponding record type.
    BadKind(u16),
    /// A string's bytes were not valid UTF-8.
    BadUtf8,
    /// A length prefix was implausibly large for the remaining input.
    BadLength(u64),
    /// Decoding finished with unconsumed bytes left over.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "input ended mid-value"),
            DecodeError::BadTag(t) => write!(f, "unknown enum tag {t}"),
            DecodeError::BadChecksum => write!(f, "frame checksum mismatch"),
            DecodeError::BadMagic => write!(f, "bad frame magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown record kind {k}"),
            DecodeError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            DecodeError::BadLength(n) => write!(f, "length prefix {n} exceeds remaining input"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends primitive values to a byte buffer in the store's wire format.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a fixed 32-byte array verbatim (no length prefix).
    pub fn put_bytes32(&mut self, v: &[u8; 32]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u64` length prefix followed by the string's UTF-8 bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a `u64` element count; the caller then encodes each element.
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Appends `Some`/`None` as a bool tag; the caller encodes the payload
    /// after a `true` tag.
    pub fn put_option_tag(&mut self, some: bool) {
        self.put_bool(some);
    }
}

/// Cursor over a byte slice reading values back in the store's wire format.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns [`DecodeError::TrailingBytes`] unless the input is exhausted.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag(t)),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a fixed 32-byte array.
    pub fn bytes32(&mut self) -> Result<[u8; 32], DecodeError> {
        let b = self.take(32)?;
        let mut a = [0u8; 32];
        a.copy_from_slice(b);
        Ok(a)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len_prefix()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads a `u64` element count, validated against the remaining input
    /// (each element needs at least one byte, so a count larger than the
    /// remaining byte count is corrupt, not merely ambitious).
    pub fn len_prefix(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(DecodeError::BadLength(n));
        }
        Ok(n as usize)
    }

    /// Reads an `Option` tag written by [`Encoder::put_option_tag`].
    pub fn option_tag(&mut self) -> Result<bool, DecodeError> {
        self.bool()
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3 polynomial, the `cksum`/zlib variant) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_bool(true);
        e.put_bool(false);
        e.put_u16(0xBEEF);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 7);
        e.put_bytes32(&[9u8; 32]);
        e.put_str("hashkey ☃");
        e.put_len(3);
        let bytes = e.into_bytes();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 7);
        assert_eq!(d.bytes32().unwrap(), [9u8; 32]);
        assert_eq!(d.str().unwrap(), "hashkey ☃");
        assert_eq!(d.u64().unwrap(), 3);
        d.finish().unwrap();
    }

    #[test]
    fn short_input_is_unexpected_end_not_panic() {
        let mut d = Decoder::new(&[1, 2, 3]);
        assert_eq!(d.u64(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn bogus_length_prefix_is_rejected() {
        let mut e = Encoder::new();
        e.put_u64(u64::MAX); // absurd string length
        e.put_raw(b"abc");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.str(), Err(DecodeError::BadLength(u64::MAX)));
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let mut d = Decoder::new(&[7]);
        assert_eq!(d.bool(), Err(DecodeError::BadTag(7)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        d.u8().unwrap();
        assert_eq!(d.finish(), Err(DecodeError::TrailingBytes));
    }
}
