//! A hand-rolled JSON writer and reader.
//!
//! The workspace builds offline against a no-op `serde` stub (see
//! `vendor/README.md`), so machine-readable output is emitted by this
//! small, dependency-free writer instead of derived serialization. The
//! writer started life in `swap_bench::json` (which still re-exports it,
//! and keeps its report-shaped encoders); it moved here so BENCH emission
//! and the durability store share one encoding stack — and gained
//! [`parse`], the decoder the bench crate never needed.
//!
//! The writer covers exactly what the perf trajectory needs: objects,
//! arrays, numbers, booleans, and escaped strings. The parser reads any
//! document the writer emits (and ordinary JSON generally) into a
//! [`JsonValue`] tree, preserving object key order.

use std::fmt::Write as _;

use crate::codec::DecodeError;

/// Builds one JSON object; create with [`object`], add fields in insertion
/// order, and take the rendered text from the closure's return.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

/// Builds one JSON array; see [`JsonObject::field_array`].
#[derive(Debug)]
pub struct JsonArray {
    buf: String,
    first: bool,
}

/// Renders `{...}` with the fields `f` adds.
pub fn object(f: impl FnOnce(&mut JsonObject)) -> String {
    let mut obj = JsonObject { buf: String::from("{"), first: true };
    f(&mut obj);
    obj.buf.push('}');
    obj.buf
}

fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

impl JsonObject {
    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a `usize` field.
    pub fn field_usize(&mut self, key: &str, v: usize) -> &mut Self {
        self.field_u64(key, v as u64)
    }

    /// Adds a finite float field (rendered with up to 3 decimals; non-finite
    /// values become `null`, which JSON requires).
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.3}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds an escaped string field.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        escape_into(&mut self.buf, v);
        self
    }

    /// Adds a nested object field.
    pub fn field_object(&mut self, key: &str, f: impl FnOnce(&mut JsonObject)) -> &mut Self {
        self.key(key);
        self.buf.push_str(&object(f));
        self
    }

    /// Adds an array field.
    pub fn field_array(&mut self, key: &str, f: impl FnOnce(&mut JsonArray)) -> &mut Self {
        self.key(key);
        let mut arr = JsonArray { buf: String::from("["), first: true };
        f(&mut arr);
        arr.buf.push(']');
        self.buf.push_str(&arr.buf);
        self
    }
}

impl JsonArray {
    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Appends an object element.
    pub fn push_object(&mut self, f: impl FnOnce(&mut JsonObject)) -> &mut Self {
        self.sep();
        self.buf.push_str(&object(f));
        self
    }

    /// Appends an unsigned integer element.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Appends an escaped string element.
    pub fn push_str(&mut self, v: &str) -> &mut Self {
        self.sep();
        escape_into(&mut self.buf, v);
        self
    }
}

/// A parsed JSON document. Objects preserve key order (they are written in
/// insertion order, and drift checks compare key sequences).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; parsed as `f64` (the writer never emits more than
    /// 53 bits of integer precision for values drift checks care about).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document into a [`JsonValue`].
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEnd`] for truncated input,
/// [`DecodeError::BadTag`] for an unexpected byte (reported as the
/// offending byte), and [`DecodeError::TrailingBytes`] if anything but
/// whitespace follows the document.
pub fn parse(text: &str) -> Result<JsonValue, DecodeError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, DecodeError> {
        let b = self.peek().ok_or(DecodeError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DecodeError> {
        let got = self.bump()?;
        if got == b {
            Ok(())
        } else {
            Err(DecodeError::BadTag(got))
        }
    }

    fn literal(&mut self, text: &[u8], v: JsonValue) -> Result<JsonValue, DecodeError> {
        if self.bytes.len() - self.pos < text.len() {
            return Err(DecodeError::UnexpectedEnd);
        }
        if &self.bytes[self.pos..self.pos + text.len()] != text {
            return Err(DecodeError::BadTag(self.bytes[self.pos]));
        }
        self.pos += text.len();
        Ok(v)
    }

    fn value(&mut self) -> Result<JsonValue, DecodeError> {
        match self.peek().ok_or(DecodeError::UnexpectedEnd)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.literal(b"true", JsonValue::Bool(true)),
            b'f' => self.literal(b"false", JsonValue::Bool(false)),
            b'n' => self.literal(b"null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(DecodeError::BadTag(b)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, DecodeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(JsonValue::Object(fields)),
                b => return Err(DecodeError::BadTag(b)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, DecodeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(JsonValue::Array(items)),
                b => return Err(DecodeError::BadTag(b)),
            }
        }
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            let digit = (d as char).to_digit(16).ok_or(DecodeError::BadTag(d))?;
                            code = code * 16 + digit;
                        }
                        // Surrogates would need pairing; the writer never
                        // emits them (it only \u-escapes control bytes).
                        out.push(char::from_u32(code).ok_or(DecodeError::BadUtf8)?);
                    }
                    b => return Err(DecodeError::BadTag(b)),
                },
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid; copy its continuation bytes through.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump()?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| DecodeError::BadUtf8)?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, DecodeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| DecodeError::BadUtf8)?;
        let n: f64 = text.parse().map_err(|_| DecodeError::BadTag(self.bytes[start]))?;
        Ok(JsonValue::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_escaping() {
        let s = object(|o| {
            o.field_u64("n", 3)
                .field_bool("ok", true)
                .field_f64("rate", 1.5)
                .field_f64("bad", f64::NAN)
                .field_str("name", "a\"b\\c\nd\u{1}")
                .field_object("inner", |i| {
                    i.field_usize("k", 7);
                })
                .field_array("xs", |a| {
                    a.push_u64(1).push_str("two").push_object(|o| {
                        o.field_u64("three", 3);
                    });
                });
        });
        assert_eq!(
            s,
            "{\"n\":3,\"ok\":true,\"rate\":1.500,\"bad\":null,\
             \"name\":\"a\\\"b\\\\c\\nd\\u0001\",\"inner\":{\"k\":7},\
             \"xs\":[1,\"two\",{\"three\":3}]}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(object(|_| {}), "{}");
        assert_eq!(
            object(|o| {
                o.field_array("xs", |_| {});
            }),
            "{\"xs\":[]}"
        );
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let s = object(|o| {
            o.field_u64("n", 3)
                .field_bool("ok", true)
                .field_f64("rate", 1.5)
                .field_f64("bad", f64::NAN)
                .field_str("name", "a\"b\\c\nd\u{1} ☃")
                .field_object("inner", |i| {
                    i.field_usize("k", 7);
                })
                .field_array("xs", |a| {
                    a.push_u64(1).push_str("two").push_object(|o| {
                        o.field_u64("three", 3);
                    });
                });
        });
        let v = parse(&s).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("bad"), Some(&JsonValue::Null));
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c\nd\u{1} ☃"));
        assert_eq!(v.get("inner").unwrap().get("k").unwrap().as_u64(), Some(7));
        assert_eq!(
            v.get("xs"),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::String("two".into()),
                JsonValue::Object(vec![("three".into(), JsonValue::Number(3.0))]),
            ]))
        );
        // Key order is preserved, as drift checks require.
        match &v {
            JsonValue::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["n", "ok", "rate", "bad", "name", "inner", "xs"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_negatives() {
        let v = parse(" { \"a\" : [ -1.5e2 , null , false ] } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(-150.0),
                JsonValue::Null,
                JsonValue::Bool(false),
            ]))
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
    }
}
