//! Durability for the exchange pipeline: a dependency-free record codec,
//! an append-only write-ahead log (WAL), and whole-state snapshots.
//!
//! The workspace builds offline against a no-op `serde` stub (see
//! `vendor/README.md`), so everything here is hand-rolled, the same way
//! the bench crate's JSON writer always was — that writer now lives in
//! [`json`], with a decoder next to it, so BENCH emission and the WAL
//! share one encoding stack.
//!
//! Three layers:
//!
//! * [`codec`] — primitive binary encoding: little-endian integers,
//!   length-prefixed strings and vectors, and the CRC32 every framed
//!   record is checksummed with.
//! * [`record`] + [`wal`] — the WAL: every exchange transition (offer
//!   submit/cancel, plan commit, stage transitions, settle/refund,
//!   identity mint/lease) as a versioned, length-prefixed, checksummed
//!   [`record::WalRecord`] frame, appended through a group-commit buffer
//!   ([`wal::Wal`]) and read back tolerating a torn final record
//!   ([`wal::read_wal`]).
//! * [`snapshot`] — periodic whole-state snapshots
//!   ([`snapshot::ExchangeSnapshot`]) that truncate the log: written
//!   temp-then-rename (atomic on POSIX), loaded newest-first.
//!
//! The store deliberately depends on **nothing**: record and snapshot
//! types mirror the domain types (offers, identities, reports) as raw
//! 32-byte arrays, strings, and `u8` tags. The conversions live where the
//! domain types do — `swap-core`'s `exchange.rs` — so the durability
//! format cannot create dependency cycles and is testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod json;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use codec::{crc32, DecodeError, Decoder, Encoder};
pub use record::{
    decode_frames, encode_frame, FailTag, FrameScan, Framed, SeedRecord, StageTag, WalRecord,
};
pub use snapshot::{
    load_latest_snapshot, write_snapshot, BookEntryRecord, BookRecord, ExchangeSnapshot,
    IdentityRecord, MaterialRecord, MetricsRecord, OfferStatusRecord, ReportRecord,
    StageTicksRecord, StorageRecord, SwapLineRecord,
};
pub use wal::{read_wal, Wal, WAL_FILE};
