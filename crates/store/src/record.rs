//! WAL record types and the on-disk frame format.
//!
//! Every exchange transition is one [`WalRecord`], written as one frame:
//!
//! ```text
//! [magic u16 = 0x5753 ("SW")] [version u16 = 1] [kind u16] [flags u16 = 0]
//! [seq u64] [len u32] [payload: len bytes] [crc32 u32 over header+payload]
//! ```
//!
//! All integers little-endian; the header is [`HEADER_LEN`] bytes. The
//! sequence number is monotone for the life of a store directory — it
//! keeps counting across snapshot truncations, which is how recovery
//! skips WAL frames already covered by the snapshot it loaded.
//!
//! [`decode_frames`] is the torn-tail-tolerant reader: it stops at the
//! first frame that is short, has a bad magic/version, or fails its CRC,
//! and reports how many bytes were valid. A crash can only ever tear the
//! *final* frame (appends are sequential), so everything before the stop
//! point is trustworthy.

use crate::codec::{crc32, DecodeError, Decoder, Encoder};

/// Frame magic: `b"SW"` on disk (0x5753 little-endian).
pub const MAGIC: u16 = 0x5753;
/// Current frame format version.
pub const VERSION: u16 = 1;
/// Frame header length in bytes (magic..len inclusive).
pub const HEADER_LEN: usize = 20;
/// Frame kind reserved for snapshot files (never appears in a WAL).
pub const SNAPSHOT_KIND: u16 = 100;

/// Pipeline stage of an in-flight epoch, as a stable wire tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageTag {
    /// On-chain verification of the committed plan.
    Clearing,
    /// Identity/key provisioning for the epoch's swaps.
    Provisioning,
    /// Swap protocol execution on the worker pool.
    Executing,
    /// Settlement and ledger absorption.
    Settling,
}

impl StageTag {
    /// Stable wire tag.
    pub fn tag(self) -> u8 {
        match self {
            StageTag::Clearing => 0,
            StageTag::Provisioning => 1,
            StageTag::Executing => 2,
            StageTag::Settling => 3,
        }
    }

    /// Inverse of [`StageTag::tag`].
    pub fn from_tag(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            0 => Ok(StageTag::Clearing),
            1 => Ok(StageTag::Provisioning),
            2 => Ok(StageTag::Executing),
            3 => Ok(StageTag::Settling),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// One party of a seeded batch submit (mirrors `swap_core`'s `PartySeed`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedRecord {
    /// MSS keypair seed.
    pub seed: [u8; 32],
    /// Merkle tree height of the party's keypair.
    pub height: u8,
    /// The party's swap secret.
    pub secret: [u8; 32],
    /// Asset kind the party gives.
    pub gives: String,
    /// Asset kind the party wants.
    pub wants: String,
}

impl SeedRecord {
    fn encode(&self, e: &mut Encoder) {
        e.put_bytes32(&self.seed);
        e.put_u8(self.height);
        e.put_bytes32(&self.secret);
        e.put_str(&self.gives);
        e.put_str(&self.wants);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            seed: d.bytes32()?,
            height: d.u8()?,
            secret: d.bytes32()?,
            gives: d.str()?,
            wants: d.str()?,
        })
    }
}

/// Why a `step()` failed, as a stable wire tag (mirrors `ExchangeError`
/// minus its non-deterministic inner error text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailTag {
    /// Plan construction failed.
    Clear,
    /// On-chain verification of a swap failed.
    Verify {
        /// The failing swap.
        swap: u64,
    },
    /// A pool worker panicked while executing a swap.
    WorkerPanicked {
        /// The swap whose worker panicked.
        swap: u64,
    },
    /// An identity ran out of one-time keys while provisioning.
    KeysExhausted {
        /// The swap being provisioned.
        swap: u64,
        /// The exhausted identity.
        address: [u8; 32],
    },
}

impl FailTag {
    fn encode(&self, e: &mut Encoder) {
        match self {
            FailTag::Clear => e.put_u8(0),
            FailTag::Verify { swap } => {
                e.put_u8(1);
                e.put_u64(*swap);
            }
            FailTag::WorkerPanicked { swap } => {
                e.put_u8(2);
                e.put_u64(*swap);
            }
            FailTag::KeysExhausted { swap, address } => {
                e.put_u8(3);
                e.put_u64(*swap);
                e.put_bytes32(address);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(FailTag::Clear),
            1 => Ok(FailTag::Verify { swap: d.u64()? }),
            2 => Ok(FailTag::WorkerPanicked { swap: d.u64()? }),
            3 => Ok(FailTag::KeysExhausted { swap: d.u64()?, address: d.bytes32()? }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// One logged exchange transition.
///
/// Two flavors share the log. **Command** records (`SubmitOffer`,
/// `SubmitSeeded`, `Resubmit`, `Cancel`, `StageEntered`, `EpochSettled`,
/// `StepFailed`) are authoritative: recovery re-runs the operation they
/// name. **Audit** records (the rest) are emitted by the code paths those
/// operations execute; recovery regenerates them and checks they match
/// what was logged, which pins replay determinism record by record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Command: a single party submitted an offer (seed-derived identity).
    SubmitOffer {
        /// MSS keypair seed of the party.
        seed: [u8; 32],
        /// Merkle tree height of the party's keypair.
        height: u8,
        /// Leaf cursor of the party's keypair at submit time.
        next_leaf: u64,
        /// The party's swap secret.
        secret: [u8; 32],
        /// Asset kind given.
        gives: String,
        /// Asset kind wanted.
        wants: String,
    },
    /// Command: a batch of parties submitted offers via the mint pipeline.
    SubmitSeeded {
        /// The batch, in submission order.
        seeds: Vec<SeedRecord>,
    },
    /// Command: a settled/refunded party re-entered the book.
    Resubmit {
        /// Identity address of the re-submitting party.
        address: [u8; 32],
        /// Fresh swap secret.
        secret: [u8; 32],
        /// Asset kind given.
        gives: String,
        /// Asset kind wanted.
        wants: String,
    },
    /// Command: an open offer was cancelled.
    Cancel {
        /// The cancelled offer.
        offer: u64,
    },
    /// Command: `step()` moved an epoch into a stage (including admission
    /// into `Clearing`).
    StageEntered {
        /// The epoch.
        epoch: u64,
        /// The stage entered.
        stage: StageTag,
        /// Simulation time of entry.
        at: u64,
    },
    /// Command: `step()` settled an epoch.
    EpochSettled {
        /// The epoch.
        epoch: u64,
        /// Simulation time of settlement.
        at: u64,
        /// The epoch's swaps, in id order.
        swaps: Vec<u64>,
    },
    /// Command: `step()` returned an error (teardown already applied).
    StepFailed {
        /// Why, as a stable tag.
        error: FailTag,
    },
    /// Audit: the clearing service committed a plan.
    PlanCommitted {
        /// Epoch the plan opened.
        epoch: u64,
        /// Cycles (swaps) in the plan.
        cycles: u64,
        /// Offers examined while planning.
        offers_examined: u64,
        /// Offers matched into cycles.
        offers_matched: u64,
    },
    /// Audit: a swap settled (all parties got their deal).
    SwapSettled {
        /// The swap.
        swap: u64,
    },
    /// Audit: a swap was refunded.
    SwapRefunded {
        /// The swap.
        swap: u64,
        /// True if the refund was due to key exhaustion.
        exhausted: bool,
    },
    /// Audit: a new identity registered with the book.
    IdentityRegistered {
        /// The identity's address.
        address: [u8; 32],
    },
    /// Audit: the mint pipeline produced a keypair.
    IdentityMinted {
        /// Mint ticket (collection order).
        ticket: u64,
        /// Address of the minted identity.
        address: [u8; 32],
    },
    /// Audit: an identity leased one-time leaves to a swap.
    LeavesLeased {
        /// The swap leasing keys.
        swap: u64,
        /// The leasing identity.
        address: [u8; 32],
        /// Number of leaves leased.
        count: u64,
    },
}

impl WalRecord {
    /// Stable wire kind of this record (goes in the frame header).
    pub fn kind(&self) -> u16 {
        match self {
            WalRecord::SubmitOffer { .. } => 1,
            WalRecord::SubmitSeeded { .. } => 2,
            WalRecord::Resubmit { .. } => 3,
            WalRecord::Cancel { .. } => 4,
            WalRecord::StageEntered { .. } => 5,
            WalRecord::EpochSettled { .. } => 6,
            WalRecord::StepFailed { .. } => 7,
            WalRecord::PlanCommitted { .. } => 8,
            WalRecord::SwapSettled { .. } => 9,
            WalRecord::SwapRefunded { .. } => 10,
            WalRecord::IdentityRegistered { .. } => 11,
            WalRecord::IdentityMinted { .. } => 12,
            WalRecord::LeavesLeased { .. } => 13,
        }
    }

    /// True for records recovery re-runs (as opposed to audits it checks).
    pub fn is_command(&self) -> bool {
        self.kind() <= 7
    }

    /// Encodes the payload (frame body, without the header or CRC).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            WalRecord::SubmitOffer { seed, height, next_leaf, secret, gives, wants } => {
                e.put_bytes32(seed);
                e.put_u8(*height);
                e.put_u64(*next_leaf);
                e.put_bytes32(secret);
                e.put_str(gives);
                e.put_str(wants);
            }
            WalRecord::SubmitSeeded { seeds } => {
                e.put_len(seeds.len());
                for s in seeds {
                    s.encode(&mut e);
                }
            }
            WalRecord::Resubmit { address, secret, gives, wants } => {
                e.put_bytes32(address);
                e.put_bytes32(secret);
                e.put_str(gives);
                e.put_str(wants);
            }
            WalRecord::Cancel { offer } => e.put_u64(*offer),
            WalRecord::StageEntered { epoch, stage, at } => {
                e.put_u64(*epoch);
                e.put_u8(stage.tag());
                e.put_u64(*at);
            }
            WalRecord::EpochSettled { epoch, at, swaps } => {
                e.put_u64(*epoch);
                e.put_u64(*at);
                e.put_len(swaps.len());
                for s in swaps {
                    e.put_u64(*s);
                }
            }
            WalRecord::StepFailed { error } => error.encode(&mut e),
            WalRecord::PlanCommitted { epoch, cycles, offers_examined, offers_matched } => {
                e.put_u64(*epoch);
                e.put_u64(*cycles);
                e.put_u64(*offers_examined);
                e.put_u64(*offers_matched);
            }
            WalRecord::SwapSettled { swap } => e.put_u64(*swap),
            WalRecord::SwapRefunded { swap, exhausted } => {
                e.put_u64(*swap);
                e.put_bool(*exhausted);
            }
            WalRecord::IdentityRegistered { address } => e.put_bytes32(address),
            WalRecord::IdentityMinted { ticket, address } => {
                e.put_u64(*ticket);
                e.put_bytes32(address);
            }
            WalRecord::LeavesLeased { swap, address, count } => {
                e.put_u64(*swap);
                e.put_bytes32(address);
                e.put_u64(*count);
            }
        }
        e.into_bytes()
    }

    /// Decodes a payload of the given `kind`; inverse of
    /// [`WalRecord::encode_payload`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] for a malformed or trailing-byte payload.
    pub fn decode_payload(kind: u16, payload: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(payload);
        let rec = match kind {
            1 => WalRecord::SubmitOffer {
                seed: d.bytes32()?,
                height: d.u8()?,
                next_leaf: d.u64()?,
                secret: d.bytes32()?,
                gives: d.str()?,
                wants: d.str()?,
            },
            2 => {
                let n = d.len_prefix()?;
                let mut seeds = Vec::with_capacity(n);
                for _ in 0..n {
                    seeds.push(SeedRecord::decode(&mut d)?);
                }
                WalRecord::SubmitSeeded { seeds }
            }
            3 => WalRecord::Resubmit {
                address: d.bytes32()?,
                secret: d.bytes32()?,
                gives: d.str()?,
                wants: d.str()?,
            },
            4 => WalRecord::Cancel { offer: d.u64()? },
            5 => WalRecord::StageEntered {
                epoch: d.u64()?,
                stage: StageTag::from_tag(d.u8()?)?,
                at: d.u64()?,
            },
            6 => {
                let epoch = d.u64()?;
                let at = d.u64()?;
                let n = d.len_prefix()?;
                let mut swaps = Vec::with_capacity(n);
                for _ in 0..n {
                    swaps.push(d.u64()?);
                }
                WalRecord::EpochSettled { epoch, at, swaps }
            }
            7 => WalRecord::StepFailed { error: FailTag::decode(&mut d)? },
            8 => WalRecord::PlanCommitted {
                epoch: d.u64()?,
                cycles: d.u64()?,
                offers_examined: d.u64()?,
                offers_matched: d.u64()?,
            },
            9 => WalRecord::SwapSettled { swap: d.u64()? },
            10 => WalRecord::SwapRefunded { swap: d.u64()?, exhausted: d.bool()? },
            11 => WalRecord::IdentityRegistered { address: d.bytes32()? },
            12 => WalRecord::IdentityMinted { ticket: d.u64()?, address: d.bytes32()? },
            13 => {
                WalRecord::LeavesLeased { swap: d.u64()?, address: d.bytes32()?, count: d.u64()? }
            }
            k => return Err(DecodeError::BadKind(k)),
        };
        d.finish()?;
        Ok(rec)
    }
}

/// Encodes one frame of any kind: header, payload, CRC.
pub fn encode_frame_raw(kind: u16, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u16(MAGIC);
    e.put_u16(VERSION);
    e.put_u16(kind);
    e.put_u16(0); // flags, reserved
    e.put_u64(seq);
    e.put_u32(payload.len() as u32);
    e.put_raw(payload);
    let mut bytes = e.into_bytes();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Encodes one WAL record as a complete frame.
pub fn encode_frame(seq: u64, record: &WalRecord) -> Vec<u8> {
    encode_frame_raw(record.kind(), seq, &record.encode_payload())
}

/// One decoded frame before payload interpretation.
#[derive(Debug, Clone, PartialEq)]
pub struct RawFrame {
    /// Record kind from the header.
    pub kind: u16,
    /// Sequence number from the header.
    pub seq: u64,
    /// Checksummed payload bytes.
    pub payload: Vec<u8>,
    /// Byte offset one past this frame's CRC (= prefix length that
    /// includes this frame).
    pub end: usize,
}

/// Reads one frame at `bytes[pos..]`. `Ok(None)` means the input ends
/// cleanly or tears here (short header, short payload, bad magic, bad
/// CRC); `Err` is reserved for a *future*-versioned frame with a valid
/// checksum, which must stop recovery loudly rather than silently.
fn decode_raw_frame(bytes: &[u8], pos: usize) -> Result<Option<RawFrame>, DecodeError> {
    let rest = &bytes[pos..];
    if rest.len() < HEADER_LEN + 4 {
        return Ok(None);
    }
    let mut d = Decoder::new(rest);
    let magic = d.u16().expect("header length checked");
    if magic != MAGIC {
        return Ok(None);
    }
    let version = d.u16().expect("header length checked");
    let kind = d.u16().expect("header length checked");
    let _flags = d.u16().expect("header length checked");
    let seq = d.u64().expect("header length checked");
    let len = d.u32().expect("header length checked") as usize;
    if rest.len() < HEADER_LEN + len + 4 {
        return Ok(None);
    }
    let framed = &rest[..HEADER_LEN + len];
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(&rest[HEADER_LEN + len..HEADER_LEN + len + 4]);
    if crc32(framed) != u32::from_le_bytes(crc_bytes) {
        return Ok(None);
    }
    // Checksum is valid, so this is a real frame, not a torn tail: an
    // unsupported version is a hard error.
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    Ok(Some(RawFrame {
        kind,
        seq,
        payload: framed[HEADER_LEN..].to_vec(),
        end: pos + HEADER_LEN + len + 4,
    }))
}

/// One decoded WAL record plus its frame position.
#[derive(Debug, Clone, PartialEq)]
pub struct Framed {
    /// Sequence number.
    pub seq: u64,
    /// The record.
    pub record: WalRecord,
    /// Byte offset one past this record's frame — truncating the log to
    /// `end` keeps this record and drops everything after it.
    pub end: usize,
}

/// Result of scanning a WAL byte string.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameScan {
    /// All complete, checksum-valid records, in log order.
    pub frames: Vec<Framed>,
    /// Length of the valid prefix (equals `frames.last().end` or 0).
    pub valid_len: usize,
    /// True if bytes followed the valid prefix (a torn final record).
    pub torn: bool,
}

/// Scans WAL bytes into records, stopping at the first torn or invalid
/// frame.
///
/// # Errors
///
/// Only for a checksum-valid frame this build cannot interpret (future
/// format version, unknown kind, malformed payload) — real corruption
/// that truncation must not paper over.
pub fn decode_frames(bytes: &[u8]) -> Result<FrameScan, DecodeError> {
    let mut frames = Vec::new();
    let mut pos = 0;
    while let Some(raw) = decode_raw_frame(bytes, pos)? {
        let record = WalRecord::decode_payload(raw.kind, &raw.payload)?;
        pos = raw.end;
        frames.push(Framed { seq: raw.seq, record, end: raw.end });
    }
    Ok(FrameScan { frames, valid_len: pos, torn: pos != bytes.len() })
}

/// Reads the single snapshot frame (kind [`SNAPSHOT_KIND`]) a snapshot
/// file holds and returns `(seq, payload)`.
///
/// # Errors
///
/// Unlike the WAL, a snapshot file is written temp-then-rename and must
/// be complete: any tear, checksum failure, or wrong kind is an error.
pub fn decode_snapshot_frame(bytes: &[u8]) -> Result<(u64, Vec<u8>), DecodeError> {
    let raw = decode_raw_frame(bytes, 0)?.ok_or(DecodeError::BadChecksum)?;
    if raw.kind != SNAPSHOT_KIND {
        return Err(DecodeError::BadKind(raw.kind));
    }
    if raw.end != bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok((raw.seq, raw.payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::SubmitOffer {
                seed: [1; 32],
                height: 4,
                next_leaf: 3,
                secret: [2; 32],
                gives: "gold".into(),
                wants: "silver".into(),
            },
            WalRecord::SubmitSeeded {
                seeds: vec![
                    SeedRecord {
                        seed: [3; 32],
                        height: 2,
                        secret: [4; 32],
                        gives: "a".into(),
                        wants: "b".into(),
                    },
                    SeedRecord {
                        seed: [5; 32],
                        height: 5,
                        secret: [6; 32],
                        gives: "b".into(),
                        wants: "a".into(),
                    },
                ],
            },
            WalRecord::Resubmit {
                address: [7; 32],
                secret: [8; 32],
                gives: "x".into(),
                wants: "y".into(),
            },
            WalRecord::Cancel { offer: 42 },
            WalRecord::StageEntered { epoch: 3, stage: StageTag::Provisioning, at: 17 },
            WalRecord::EpochSettled { epoch: 3, at: 29, swaps: vec![5, 6, 7] },
            WalRecord::StepFailed { error: FailTag::KeysExhausted { swap: 9, address: [9; 32] } },
            WalRecord::PlanCommitted {
                epoch: 4,
                cycles: 2,
                offers_examined: 10,
                offers_matched: 5,
            },
            WalRecord::SwapSettled { swap: 11 },
            WalRecord::SwapRefunded { swap: 12, exhausted: true },
            WalRecord::IdentityRegistered { address: [10; 32] },
            WalRecord::IdentityMinted { ticket: 6, address: [11; 32] },
            WalRecord::LeavesLeased { swap: 13, address: [12; 32], count: 4 },
        ]
    }

    #[test]
    fn every_record_kind_round_trips() {
        for (i, rec) in sample_records().into_iter().enumerate() {
            let payload = rec.encode_payload();
            let back = WalRecord::decode_payload(rec.kind(), &payload)
                .unwrap_or_else(|e| panic!("record {i} failed to decode: {e}"));
            assert_eq!(back, rec, "record {i} changed across round trip");
            // Encode → decode → encode is byte-identical.
            assert_eq!(back.encode_payload(), payload, "record {i} re-encode differs");
        }
    }

    #[test]
    fn kinds_are_unique_and_stable() {
        let kinds: Vec<u16> = sample_records().iter().map(WalRecord::kind).collect();
        assert_eq!(kinds, (1..=13).collect::<Vec<u16>>());
        let commands = sample_records().iter().filter(|r| r.is_command()).count();
        assert_eq!(commands, 7);
    }

    #[test]
    fn frame_stream_round_trips() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64, rec));
        }
        let scan = decode_frames(&bytes).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.frames.len(), records.len());
        for (i, f) in scan.frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.record, records[i]);
        }
        // `end` offsets partition the byte string exactly.
        assert_eq!(scan.frames.last().unwrap().end, bytes.len());
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_cut() {
        let records = sample_records();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, rec) in records.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64, rec));
            boundaries.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let scan = decode_frames(&bytes[..cut]).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.frames.len(), whole, "cut at {cut}");
            assert_eq!(scan.valid_len, boundaries[whole], "cut at {cut}");
            assert_eq!(scan.torn, cut != boundaries[whole], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64, rec));
        }
        let first_end = decode_frames(&bytes).unwrap().frames[0].end;
        // Flip one payload byte of the second frame: its CRC now fails, so
        // the scan keeps frame 0 and reports the rest as a torn tail.
        bytes[first_end + HEADER_LEN] ^= 0xFF;
        let scan = decode_frames(&bytes).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, first_end);
        assert!(scan.torn);
    }

    #[test]
    fn future_version_is_a_hard_error() {
        let rec = WalRecord::Cancel { offer: 1 };
        let payload = rec.encode_payload();
        let mut e = Encoder::new();
        e.put_u16(MAGIC);
        e.put_u16(VERSION + 1);
        e.put_u16(rec.kind());
        e.put_u16(0);
        e.put_u64(0);
        e.put_u32(payload.len() as u32);
        e.put_raw(&payload);
        let mut bytes = e.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_frames(&bytes), Err(DecodeError::BadVersion(VERSION + 1)));
    }

    #[test]
    fn snapshot_frame_round_trips_and_rejects_tears() {
        let payload = b"snapshot payload".to_vec();
        let bytes = encode_frame_raw(SNAPSHOT_KIND, 77, &payload);
        assert_eq!(decode_snapshot_frame(&bytes).unwrap(), (77, payload.clone()));
        // A torn snapshot is an error, never silently accepted.
        assert!(decode_snapshot_frame(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_snapshot_frame(&extra).is_err());
        // Wrong kind (a WAL record) is rejected too.
        let wal = encode_frame(0, &WalRecord::Cancel { offer: 1 });
        assert!(decode_snapshot_frame(&wal).is_err());
    }
}
