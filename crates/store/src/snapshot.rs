//! Whole-state snapshots that truncate the WAL.
//!
//! A snapshot is taken only at a *pipeline-empty* point (no in-flight
//! epochs), so it never has to serialize mid-epoch engine state: the
//! clearing book, the offer material, the identity store, the counters of
//! the report, and the simulation clock are the whole story. Mirror types
//! here hold that state as raw bytes/strings/tags; the conversions to and
//! from domain types live in `swap-core`.
//!
//! On disk a snapshot is a single [`crate::record::SNAPSHOT_KIND`] frame
//! in a file named `snap-<seq>.snap`, written temp-then-rename so a crash
//! can never leave a half-written file under the real name. `<seq>` is
//! the zero-padded sequence number of the last WAL record the snapshot
//! covers; [`load_latest_snapshot`] picks the highest. The ledger itself
//! is *not* serialized — the snapshot keeps the report's storage totals as
//! an archived baseline and recovery restarts from fresh chains, which is
//! sound because settled epochs never influence later ones except through
//! those totals.

use std::io;
use std::path::{Path, PathBuf};

use crate::codec::{DecodeError, Decoder, Encoder};
use crate::record::{decode_snapshot_frame, encode_frame_raw, SNAPSHOT_KIND};

/// One master identity: enough to rebuild its `MssKeypair` without
/// re-deriving the Lamport leaves (the expensive part of keygen — the
/// leaves are stored as digests and the Merkle tree is rebuilt from them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentityRecord {
    /// Keypair seed (also rebuilds the HMAC engine).
    pub seed: [u8; 32],
    /// Merkle tree height.
    pub height: u8,
    /// Leaf cursor: how many one-time keys are already leased.
    pub next_leaf: u64,
    /// Leaf digests, in index order (`2^height` of them).
    pub leaves: Vec<[u8; 32]>,
}

/// One entry of the exchange's offer-material map: the secret (and its
/// owner's address) the exchange holds for an offer it has accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaterialRecord {
    /// The offer.
    pub offer: u64,
    /// The submitting identity's address.
    pub address: [u8; 32],
    /// The swap secret backing the offer's hashlock.
    pub secret: [u8; 32],
}

/// Offer lifecycle status, mirroring `swap_market::OfferStatus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferStatusRecord {
    /// In the book, matchable.
    Open,
    /// Cancelled before matching.
    Cancelled,
    /// Matched into a swap.
    Matched {
        /// Epoch the match cleared in.
        epoch: u64,
        /// The swap.
        swap: u64,
    },
    /// Swap settled.
    Settled,
    /// Swap refunded.
    Refunded,
}

impl OfferStatusRecord {
    fn encode(&self, e: &mut Encoder) {
        match self {
            OfferStatusRecord::Open => e.put_u8(0),
            OfferStatusRecord::Cancelled => e.put_u8(1),
            OfferStatusRecord::Matched { epoch, swap } => {
                e.put_u8(2);
                e.put_u64(*epoch);
                e.put_u64(*swap);
            }
            OfferStatusRecord::Settled => e.put_u8(3),
            OfferStatusRecord::Refunded => e.put_u8(4),
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(OfferStatusRecord::Open),
            1 => Ok(OfferStatusRecord::Cancelled),
            2 => Ok(OfferStatusRecord::Matched { epoch: d.u64()?, swap: d.u64()? }),
            3 => Ok(OfferStatusRecord::Settled),
            4 => Ok(OfferStatusRecord::Refunded),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// One clearing-book entry: the offer itself plus its status. Ids are
/// implicit (`first_id + index`), and addresses are recomputed from the
/// public key on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookEntryRecord {
    /// Merkle root of the offering identity's MSS public key.
    pub root: [u8; 32],
    /// Tree height of that public key.
    pub key_height: u8,
    /// The offer's hashlock digest.
    pub hashlock: [u8; 32],
    /// Asset kind given.
    pub gives: String,
    /// Asset kind wanted.
    pub wants: String,
    /// Lifecycle status.
    pub status: OfferStatusRecord,
}

impl BookEntryRecord {
    fn encode(&self, e: &mut Encoder) {
        e.put_bytes32(&self.root);
        e.put_u8(self.key_height);
        e.put_bytes32(&self.hashlock);
        e.put_str(&self.gives);
        e.put_str(&self.wants);
        self.status.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            root: d.bytes32()?,
            key_height: d.u8()?,
            hashlock: d.bytes32()?,
            gives: d.str()?,
            wants: d.str()?,
            status: OfferStatusRecord::decode(d)?,
        })
    }
}

/// The whole clearing service: entries plus the cursors and relations the
/// incremental index cannot rederive from statuses alone.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BookRecord {
    /// Id of the first entry (entry ids are dense from here).
    pub first_id: u64,
    /// Next epoch number.
    pub epoch: u64,
    /// Next swap id.
    pub next_swap: u64,
    /// All entries, in id order.
    pub entries: Vec<BookEntryRecord>,
    /// Offers deferred by the last committed plan.
    pub deferred: Vec<u64>,
    /// In-flight swaps: swap id → member offers in vertex order.
    pub in_flight: Vec<(u64, Vec<u64>)>,
}

impl BookRecord {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.first_id);
        e.put_u64(self.epoch);
        e.put_u64(self.next_swap);
        e.put_len(self.entries.len());
        for entry in &self.entries {
            entry.encode(e);
        }
        e.put_len(self.deferred.len());
        for id in &self.deferred {
            e.put_u64(*id);
        }
        e.put_len(self.in_flight.len());
        for (swap, offers) in &self.in_flight {
            e.put_u64(*swap);
            e.put_len(offers.len());
            for o in offers {
                e.put_u64(*o);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let first_id = d.u64()?;
        let epoch = d.u64()?;
        let next_swap = d.u64()?;
        let n = d.len_prefix()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(BookEntryRecord::decode(d)?);
        }
        let n = d.len_prefix()?;
        let mut deferred = Vec::with_capacity(n);
        for _ in 0..n {
            deferred.push(d.u64()?);
        }
        let n = d.len_prefix()?;
        let mut in_flight = Vec::with_capacity(n);
        for _ in 0..n {
            let swap = d.u64()?;
            let m = d.len_prefix()?;
            let mut offers = Vec::with_capacity(m);
            for _ in 0..m {
                offers.push(d.u64()?);
            }
            in_flight.push((swap, offers));
        }
        Ok(Self { first_id, epoch, next_swap, entries, deferred, in_flight })
    }
}

/// Per-swap protocol metrics, mirroring `swap_core::runner::RunMetrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsRecord {
    /// Protocol rounds executed.
    pub rounds: u64,
    /// Contracts published on chain.
    pub contracts_published: u64,
    /// Unlock calls made.
    pub unlock_calls: u64,
    /// Bytes of unlock arguments.
    pub unlock_bytes: u64,
    /// Claim calls made.
    pub claim_calls: u64,
    /// Refund calls made.
    pub refund_calls: u64,
    /// Direct transfers performed.
    pub direct_transfers: u64,
    /// Calls rejected by contracts.
    pub rejected_calls: u64,
    /// Bytes of announcements.
    pub announce_bytes: u64,
}

impl MetricsRecord {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.rounds);
        e.put_u64(self.contracts_published);
        e.put_u64(self.unlock_calls);
        e.put_u64(self.unlock_bytes);
        e.put_u64(self.claim_calls);
        e.put_u64(self.refund_calls);
        e.put_u64(self.direct_transfers);
        e.put_u64(self.rejected_calls);
        e.put_u64(self.announce_bytes);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            rounds: d.u64()?,
            contracts_published: d.u64()?,
            unlock_calls: d.u64()?,
            unlock_bytes: d.u64()?,
            claim_calls: d.u64()?,
            refund_calls: d.u64()?,
            direct_transfers: d.u64()?,
            rejected_calls: d.u64()?,
            announce_bytes: d.u64()?,
        })
    }
}

/// One executed-swap summary line of the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapLineRecord {
    /// The swap.
    pub swap: u64,
    /// Its epoch.
    pub epoch: u64,
    /// Party count.
    pub parties: u64,
    /// Leader count.
    pub leaders: u64,
    /// Protocol tag (0 = hashkey, 1 = htlc).
    pub protocol: u8,
    /// True if the swap settled.
    pub settled: bool,
    /// True if every party got its deal.
    pub all_deal: bool,
    /// Protocol rounds.
    pub rounds: u64,
    /// Per-swap metrics.
    pub metrics: MetricsRecord,
}

impl SwapLineRecord {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.swap);
        e.put_u64(self.epoch);
        e.put_u64(self.parties);
        e.put_u64(self.leaders);
        e.put_u8(self.protocol);
        e.put_bool(self.settled);
        e.put_bool(self.all_deal);
        e.put_u64(self.rounds);
        self.metrics.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            swap: d.u64()?,
            epoch: d.u64()?,
            parties: d.u64()?,
            leaders: d.u64()?,
            protocol: d.u8()?,
            settled: d.bool()?,
            all_deal: d.bool()?,
            rounds: d.u64()?,
            metrics: MetricsRecord::decode(d)?,
        })
    }
}

/// Storage totals, mirroring `swap_chain::StorageReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageRecord {
    /// Blocks produced.
    pub blocks: u64,
    /// Bytes of block overhead.
    pub block_bytes: u64,
    /// Bytes of contract state.
    pub contract_bytes: u64,
    /// Bytes of asset state.
    pub asset_bytes: u64,
    /// Bytes of transactions.
    pub tx_bytes: u64,
}

impl StorageRecord {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.blocks);
        e.put_u64(self.block_bytes);
        e.put_u64(self.contract_bytes);
        e.put_u64(self.asset_bytes);
        e.put_u64(self.tx_bytes);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            blocks: d.u64()?,
            block_bytes: d.u64()?,
            contract_bytes: d.u64()?,
            asset_bytes: d.u64()?,
            tx_bytes: d.u64()?,
        })
    }
}

/// Per-stage tick totals of the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTicksRecord {
    /// Ticks spent clearing.
    pub clearing: u64,
    /// Ticks spent provisioning.
    pub provisioning: u64,
    /// Ticks spent executing.
    pub executing: u64,
    /// Ticks spent settling.
    pub settling: u64,
}

/// The full `ExchangeReport`, mirrored field by field — recovery restores
/// it verbatim so the byte-identical-report invariant holds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReportRecord {
    /// Epochs admitted.
    pub epochs: u64,
    /// Offers submitted.
    pub offers_submitted: u64,
    /// Offers cancelled.
    pub offers_cancelled: u64,
    /// Swaps cleared (entered the pipeline).
    pub swaps_cleared: u64,
    /// Swaps settled.
    pub swaps_settled: u64,
    /// Swaps refunded.
    pub swaps_refunded: u64,
    /// Swaps refunded due to key exhaustion.
    pub swaps_exhausted: u64,
    /// Identities registered.
    pub identities_registered: u64,
    /// Identities minted by the mint pipeline.
    pub identities_minted: u64,
    /// Mints that overlapped execution.
    pub mints_overlapping_execution: u64,
    /// One-time leaves leased.
    pub leaves_leased: u64,
    /// Wall-clock ticks simulated.
    pub wall_ticks: u64,
    /// Per-stage tick totals.
    pub stage_ticks: StageTicksRecord,
    /// Peak concurrently-executing epochs.
    pub executing_peak: u64,
    /// Epoch-ticks resident in Executing.
    pub executing_resident_ticks: u64,
    /// Ledger transactions executed.
    pub tx_executed: u64,
    /// Ledger transactions rolled back.
    pub tx_rolled_back: u64,
    /// Storage totals (the archived baseline on recovery).
    pub storage: StorageRecord,
    /// Executed-swap summary lines, in settle order.
    pub swaps: Vec<SwapLineRecord>,
}

impl ReportRecord {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.epochs);
        e.put_u64(self.offers_submitted);
        e.put_u64(self.offers_cancelled);
        e.put_u64(self.swaps_cleared);
        e.put_u64(self.swaps_settled);
        e.put_u64(self.swaps_refunded);
        e.put_u64(self.swaps_exhausted);
        e.put_u64(self.identities_registered);
        e.put_u64(self.identities_minted);
        e.put_u64(self.mints_overlapping_execution);
        e.put_u64(self.leaves_leased);
        e.put_u64(self.wall_ticks);
        e.put_u64(self.stage_ticks.clearing);
        e.put_u64(self.stage_ticks.provisioning);
        e.put_u64(self.stage_ticks.executing);
        e.put_u64(self.stage_ticks.settling);
        e.put_u64(self.executing_peak);
        e.put_u64(self.executing_resident_ticks);
        e.put_u64(self.tx_executed);
        e.put_u64(self.tx_rolled_back);
        self.storage.encode(e);
        e.put_len(self.swaps.len());
        for s in &self.swaps {
            s.encode(e);
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut r = Self {
            epochs: d.u64()?,
            offers_submitted: d.u64()?,
            offers_cancelled: d.u64()?,
            swaps_cleared: d.u64()?,
            swaps_settled: d.u64()?,
            swaps_refunded: d.u64()?,
            swaps_exhausted: d.u64()?,
            identities_registered: d.u64()?,
            identities_minted: d.u64()?,
            mints_overlapping_execution: d.u64()?,
            leaves_leased: d.u64()?,
            wall_ticks: d.u64()?,
            stage_ticks: StageTicksRecord {
                clearing: d.u64()?,
                provisioning: d.u64()?,
                executing: d.u64()?,
                settling: d.u64()?,
            },
            executing_peak: d.u64()?,
            executing_resident_ticks: d.u64()?,
            tx_executed: d.u64()?,
            tx_rolled_back: d.u64()?,
            storage: StorageRecord::decode(d)?,
            swaps: Vec::new(),
        };
        let n = d.len_prefix()?;
        r.swaps.reserve(n);
        for _ in 0..n {
            r.swaps.push(SwapLineRecord::decode(d)?);
        }
        Ok(r)
    }
}

/// The complete durable state of an exchange at a pipeline-empty point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExchangeSnapshot {
    /// Sequence number of the last WAL record this snapshot covers;
    /// replay skips records with `seq <= last_seq`.
    pub last_seq: u64,
    /// Digest of the semantic exchange configuration; recovery refuses a
    /// store written under a different configuration.
    pub config_digest: [u8; 32],
    /// Simulation clock.
    pub now: u64,
    /// Per-stage vacated-at times of the pipeline frontier.
    pub vacated: [u64; 4],
    /// Pending-admission marker (`Some(t)` if offers arrived at `t` and
    /// have not been admitted yet).
    pub dirty_since: Option<u64>,
    /// Next mint ticket.
    pub mint_ticket: u64,
    /// Total one-time leaves leased by the identity store.
    pub leaves_leased: u64,
    /// The report, restored verbatim.
    pub report: ReportRecord,
    /// The clearing book.
    pub book: BookRecord,
    /// Offer material (offer → owner address + secret), in offer order.
    pub material: Vec<MaterialRecord>,
    /// Master identities, in address order.
    pub identities: Vec<IdentityRecord>,
}

impl ExchangeSnapshot {
    /// Encodes the snapshot payload (frame body).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.last_seq);
        e.put_bytes32(&self.config_digest);
        e.put_u64(self.now);
        for v in &self.vacated {
            e.put_u64(*v);
        }
        match self.dirty_since {
            Some(t) => {
                e.put_option_tag(true);
                e.put_u64(t);
            }
            None => e.put_option_tag(false),
        }
        e.put_u64(self.mint_ticket);
        e.put_u64(self.leaves_leased);
        self.report.encode(&mut e);
        self.book.encode(&mut e);
        e.put_len(self.material.len());
        for m in &self.material {
            e.put_u64(m.offer);
            e.put_bytes32(&m.address);
            e.put_bytes32(&m.secret);
        }
        e.put_len(self.identities.len());
        for id in &self.identities {
            e.put_bytes32(&id.seed);
            e.put_u8(id.height);
            e.put_u64(id.next_leaf);
            e.put_len(id.leaves.len());
            for leaf in &id.leaves {
                e.put_bytes32(leaf);
            }
        }
        e.into_bytes()
    }

    /// Decodes a snapshot payload; inverse of
    /// [`ExchangeSnapshot::encode_payload`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] for a malformed payload.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(payload);
        let last_seq = d.u64()?;
        let config_digest = d.bytes32()?;
        let now = d.u64()?;
        let mut vacated = [0u64; 4];
        for v in &mut vacated {
            *v = d.u64()?;
        }
        let dirty_since = if d.option_tag()? { Some(d.u64()?) } else { None };
        let mint_ticket = d.u64()?;
        let leaves_leased = d.u64()?;
        let report = ReportRecord::decode(&mut d)?;
        let book = BookRecord::decode(&mut d)?;
        let n = d.len_prefix()?;
        let mut material = Vec::with_capacity(n);
        for _ in 0..n {
            material.push(MaterialRecord {
                offer: d.u64()?,
                address: d.bytes32()?,
                secret: d.bytes32()?,
            });
        }
        let n = d.len_prefix()?;
        let mut identities = Vec::with_capacity(n);
        for _ in 0..n {
            let seed = d.bytes32()?;
            let height = d.u8()?;
            let next_leaf = d.u64()?;
            let m = d.len_prefix()?;
            let mut leaves = Vec::with_capacity(m);
            for _ in 0..m {
                leaves.push(d.bytes32()?);
            }
            identities.push(IdentityRecord { seed, height, next_leaf, leaves });
        }
        d.finish()?;
        Ok(Self {
            last_seq,
            config_digest,
            now,
            vacated,
            dirty_since,
            mint_ticket,
            leaves_leased,
            report,
            book,
            material,
            identities,
        })
    }
}

fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:020}.snap")
}

/// Writes `snap` to `dir` durably: temp file, sync, atomic rename, then
/// deletes older snapshot files (newest-first recovery never needs them).
/// Returns the snapshot's final path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_snapshot(dir: &Path, snap: &ExchangeSnapshot) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let bytes = encode_frame_raw(SNAPSHOT_KIND, snap.last_seq, &snap.encode_payload());
    let tmp = dir.join(format!("{}.tmp", snapshot_name(snap.last_seq)));
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    let path = dir.join(snapshot_name(snap.last_seq));
    std::fs::rename(&tmp, &path)?;
    // Older snapshots are redundant once the rename lands; delete them
    // last so a crash anywhere in this function leaves a loadable store.
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let is_old_snap = name.starts_with("snap-")
            && (name.ends_with(".snap") || name.ends_with(".tmp"))
            && *name != *path.file_name().unwrap_or_default().to_string_lossy();
        if is_old_snap {
            let _ = std::fs::remove_file(entry.path());
        }
    }
    Ok(path)
}

/// Loads the newest snapshot in `dir`, or `None` if there is none.
///
/// # Errors
///
/// Filesystem errors, or a present-but-undecodable newest snapshot —
/// never silently falls back past a corrupt file, because snapshots are
/// renamed into place whole and a bad one means real damage.
pub fn load_latest_snapshot(dir: &Path) -> io::Result<Option<ExchangeSnapshot>> {
    let mut newest: Option<PathBuf> = None;
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if name.starts_with("snap-") && name.ends_with(".snap") {
            // Zero-padded names sort by sequence number.
            if newest.as_ref().map_or(true, |n| {
                name.as_str() > n.file_name().unwrap_or_default().to_string_lossy().as_ref()
            }) {
                newest = Some(entry.path());
            }
        }
    }
    let Some(path) = newest else { return Ok(None) };
    let bytes = std::fs::read(&path)?;
    let (seq, payload) = decode_snapshot_frame(&bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let snap = ExchangeSnapshot::decode_payload(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if snap.last_seq != seq {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot frame seq disagrees with payload",
        ));
    }
    Ok(Some(snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_snapshot(last_seq: u64) -> ExchangeSnapshot {
        ExchangeSnapshot {
            last_seq,
            config_digest: [0xCD; 32],
            now: 123,
            vacated: [1, 2, 3, 4],
            dirty_since: Some(120),
            mint_ticket: 9,
            leaves_leased: 14,
            report: ReportRecord {
                epochs: 3,
                offers_submitted: 12,
                swaps_settled: 4,
                stage_ticks: StageTicksRecord { clearing: 3, executing: 40, ..Default::default() },
                storage: StorageRecord { blocks: 7, tx_bytes: 512, ..Default::default() },
                swaps: vec![SwapLineRecord {
                    swap: 2,
                    epoch: 1,
                    parties: 3,
                    leaders: 1,
                    protocol: 0,
                    settled: true,
                    all_deal: true,
                    rounds: 5,
                    metrics: MetricsRecord { rounds: 5, unlock_calls: 3, ..Default::default() },
                }],
                ..Default::default()
            },
            book: BookRecord {
                first_id: 2,
                epoch: 3,
                next_swap: 5,
                entries: vec![
                    BookEntryRecord {
                        root: [1; 32],
                        key_height: 4,
                        hashlock: [2; 32],
                        gives: "gold".into(),
                        wants: "silver".into(),
                        status: OfferStatusRecord::Open,
                    },
                    BookEntryRecord {
                        root: [3; 32],
                        key_height: 2,
                        hashlock: [4; 32],
                        gives: "silver".into(),
                        wants: "gold".into(),
                        status: OfferStatusRecord::Matched { epoch: 2, swap: 4 },
                    },
                ],
                deferred: vec![3],
                in_flight: vec![(4, vec![3, 2])],
            },
            material: vec![MaterialRecord { offer: 2, address: [5; 32], secret: [6; 32] }],
            identities: vec![IdentityRecord {
                seed: [7; 32],
                height: 2,
                next_leaf: 1,
                leaves: vec![[8; 32], [9; 32], [10; 32], [11; 32]],
            }],
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swap-store-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn payload_round_trips_byte_identically() {
        let snap = sample_snapshot(41);
        let payload = snap.encode_payload();
        let back = ExchangeSnapshot::decode_payload(&payload).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.encode_payload(), payload);
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let payload = sample_snapshot(1).encode_payload();
        for cut in 0..payload.len() {
            assert!(
                ExchangeSnapshot::decode_payload(&payload[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn write_then_load_latest() {
        let dir = tmp_dir("write-load");
        assert!(load_latest_snapshot(&dir).unwrap().is_none());
        write_snapshot(&dir, &sample_snapshot(10)).unwrap();
        write_snapshot(&dir, &sample_snapshot(25)).unwrap();
        let loaded = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded, sample_snapshot(25));
        // The older snapshot was cleaned up by the newer write.
        let snaps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".snap"))
            .collect();
        assert_eq!(snaps, vec![snapshot_name(25)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_files_are_ignored_and_cleaned() {
        let dir = tmp_dir("tmp-left");
        write_snapshot(&dir, &sample_snapshot(5)).unwrap();
        // Simulate a crash between temp-write and rename of a later snap.
        std::fs::write(dir.join("snap-00000000000000000009.snap.tmp"), b"half").unwrap();
        let loaded = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded.last_seq, 5);
        write_snapshot(&dir, &sample_snapshot(12)).unwrap();
        assert!(!dir.join("snap-00000000000000000009.snap.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_is_a_loud_error() {
        let dir = tmp_dir("corrupt");
        write_snapshot(&dir, &sample_snapshot(5)).unwrap();
        let mut bytes = std::fs::read(dir.join(snapshot_name(5))).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(dir.join(snapshot_name(5)), &bytes).unwrap();
        assert!(load_latest_snapshot(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
