//! The append-only write-ahead log with a group-commit buffer.
//!
//! [`Wal`] owns the log file and the next sequence number. Records are
//! buffered in memory and flushed to the OS once the buffer reaches the
//! group-commit threshold (or on [`Wal::flush`]/drop); [`Wal::sync`]
//! additionally forces the data to disk and is called at snapshot points.
//! The crash model is process crash: anything flushed survives, and the
//! file can end mid-record, which [`read_wal`] tolerates.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::record::{decode_frames, encode_frame, FrameScan, WalRecord};

/// File name of the log inside a store directory.
pub const WAL_FILE: &str = "exchange.wal";

/// Append-side handle on a WAL file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    buf: Vec<u8>,
    buffered: usize,
    group_commit: usize,
    next_seq: u64,
}

impl Wal {
    /// Creates (truncating any previous log) the WAL in `dir`, starting at
    /// sequence 0. Flushes to the OS every `group_commit` records
    /// (`0` behaves as `1`: every record flushes immediately).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(dir: &Path, group_commit: usize) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        Ok(Self { file, path, buf: Vec::new(), buffered: 0, group_commit, next_seq: 0 })
    }

    /// Opens an existing WAL for appending after recovery: truncates the
    /// file to `valid_len` (dropping a torn tail) and continues the
    /// sequence at `next_seq`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_append(
        dir: &Path,
        valid_len: u64,
        next_seq: u64,
        group_commit: usize,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        // Keep the valid prefix; `set_len` below drops only the torn tail.
        let file = OpenOptions::new().write(true).create(true).truncate(false).open(&path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Self { file, path, buf: Vec::new(), buffered: 0, group_commit, next_seq })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next appended record will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends a group of records atomically with respect to buffering:
    /// either the whole group reaches the buffer or none of it does, so a
    /// flush boundary can never split a group. Flushes if the buffer
    /// reaches the group-commit threshold.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the flush.
    pub fn append_group(&mut self, records: &[WalRecord]) -> io::Result<()> {
        for rec in records {
            let frame = encode_frame(self.next_seq, rec);
            self.next_seq += 1;
            self.buf.extend_from_slice(&frame);
        }
        self.buffered += records.len();
        if self.buffered >= self.group_commit.max(1) {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes all buffered records to the OS.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.buffered = 0;
        Ok(())
    }

    /// Flushes and forces file data to disk (`fdatasync`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn sync(&mut self) -> io::Result<()> {
        self.flush()?;
        self.file.sync_data()
    }

    /// Truncates the log to empty after a snapshot made its contents
    /// redundant. The sequence number keeps counting — that is how replay
    /// knows which records a snapshot already covers.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn reset(&mut self) -> io::Result<()> {
        self.flush()?;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort: records accepted into the buffer should reach the
        // OS even on unwind, matching the process-crash durability model.
        let _ = self.flush();
    }
}

/// Reads and scans the WAL in `dir`. A missing file is an empty log, and
/// a torn final record is reported, not an error.
///
/// # Errors
///
/// Filesystem errors, or a checksum-valid frame this build cannot
/// interpret (see [`decode_frames`]).
pub fn read_wal(dir: &Path) -> io::Result<FrameScan> {
    let path = dir.join(WAL_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    decode_frames(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<WalRecord> {
        (0..n).map(|i| WalRecord::Cancel { offer: i }).collect()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swap-store-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_read_round_trip() {
        let dir = tmp_dir("round-trip");
        let mut wal = Wal::create(&dir, 4).unwrap();
        for rec in records(10) {
            wal.append_group(std::slice::from_ref(&rec)).unwrap();
        }
        wal.flush().unwrap();
        let scan = read_wal(&dir).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.frames.len(), 10);
        for (i, f) in scan.frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.record, WalRecord::Cancel { offer: i as u64 });
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_threshold() {
        let dir = tmp_dir("group-commit");
        let mut wal = Wal::create(&dir, 4).unwrap();
        for rec in records(3) {
            wal.append_group(std::slice::from_ref(&rec)).unwrap();
        }
        // Below the threshold: nothing has reached the file yet.
        assert_eq!(read_wal(&dir).unwrap().frames.len(), 0);
        wal.append_group(&records(1)).unwrap();
        // Fourth record crossed the threshold: all four flushed together.
        assert_eq!(read_wal(&dir).unwrap().frames.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_flushes_buffered_records() {
        let dir = tmp_dir("drop-flush");
        {
            let mut wal = Wal::create(&dir, 1000).unwrap();
            wal.append_group(&records(5)).unwrap();
        }
        assert_eq!(read_wal(&dir).unwrap().frames.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let dir = tmp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let scan = read_wal(&dir).unwrap();
        assert_eq!(scan.frames.len(), 0);
        assert!(!scan.torn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_drops_torn_tail_and_continues_seq() {
        let dir = tmp_dir("reopen");
        let mut wal = Wal::create(&dir, 1).unwrap();
        wal.append_group(&records(3)).unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Simulate a crash mid-append: tear the last record.
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let scan = read_wal(&dir).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.frames.len(), 2);
        let next_seq = scan.frames.last().unwrap().seq + 1;
        let mut wal = Wal::open_append(&dir, scan.valid_len as u64, next_seq, 1).unwrap();
        assert_eq!(wal.next_seq(), 2);
        wal.append_group(&[WalRecord::Cancel { offer: 99 }]).unwrap();
        wal.flush().unwrap();

        let scan = read_wal(&dir).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[2].seq, 2);
        assert_eq!(scan.frames[2].record, WalRecord::Cancel { offer: 99 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_truncates_but_seq_keeps_counting() {
        let dir = tmp_dir("reset");
        let mut wal = Wal::create(&dir, 1).unwrap();
        wal.append_group(&records(4)).unwrap();
        wal.reset().unwrap();
        assert_eq!(read_wal(&dir).unwrap().frames.len(), 0);
        wal.append_group(&[WalRecord::Cancel { offer: 7 }]).unwrap();
        wal.flush().unwrap();
        let scan = read_wal(&dir).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0].seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn groups_never_split_across_a_flush_boundary() {
        let dir = tmp_dir("group-atomic");
        let mut wal = Wal::create(&dir, 4).unwrap();
        wal.append_group(&records(3)).unwrap();
        assert_eq!(read_wal(&dir).unwrap().frames.len(), 0);
        // A 6-record group crosses the threshold: the whole group flushes
        // together with the 3 already buffered.
        wal.append_group(&records(6)).unwrap();
        assert_eq!(read_wal(&dir).unwrap().frames.len(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
