//! Property tests pinning the codec: encode → decode → encode is
//! byte-identical over all record types, frame streams survive arbitrary
//! truncation, and snapshots round-trip.

use proptest::prelude::*;
use swap_store::{
    decode_frames, encode_frame, BookEntryRecord, BookRecord, ExchangeSnapshot, FailTag, Framed,
    IdentityRecord, MaterialRecord, MetricsRecord, OfferStatusRecord, ReportRecord, SeedRecord,
    StageTag, StorageRecord, SwapLineRecord, WalRecord,
};

fn asset() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..12).prop_map(|v| {
        v.into_iter()
            .map(|b| match b % 29 {
                0 => '☃',
                1 => '"',
                2 => '\\',
                3 => '\n',
                n => (b'a' + (n - 4) % 26) as char,
            })
            .collect()
    })
}

fn seed_record() -> impl Strategy<Value = SeedRecord> {
    (any::<[u8; 32]>(), any::<u8>(), any::<[u8; 32]>(), asset(), asset()).prop_map(
        |(seed, height, secret, gives, wants)| SeedRecord { seed, height, secret, gives, wants },
    )
}

fn fail_tag() -> impl Strategy<Value = FailTag> {
    prop_oneof![
        Just(FailTag::Clear),
        any::<u64>().prop_map(|swap| FailTag::Verify { swap }),
        any::<u64>().prop_map(|swap| FailTag::WorkerPanicked { swap }),
        (any::<u64>(), any::<[u8; 32]>())
            .prop_map(|(swap, address)| FailTag::KeysExhausted { swap, address }),
    ]
}

fn stage_tag() -> impl Strategy<Value = StageTag> {
    prop_oneof![
        Just(StageTag::Clearing),
        Just(StageTag::Provisioning),
        Just(StageTag::Executing),
        Just(StageTag::Settling),
    ]
}

fn wal_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (any::<[u8; 32]>(), any::<u8>(), any::<u64>(), any::<[u8; 32]>(), asset(), asset())
            .prop_map(|(seed, height, next_leaf, secret, gives, wants)| WalRecord::SubmitOffer {
                seed,
                height,
                next_leaf,
                secret,
                gives,
                wants,
            }),
        prop::collection::vec(seed_record(), 0..5)
            .prop_map(|seeds| WalRecord::SubmitSeeded { seeds }),
        (any::<[u8; 32]>(), any::<[u8; 32]>(), asset(), asset()).prop_map(
            |(address, secret, gives, wants)| WalRecord::Resubmit { address, secret, gives, wants }
        ),
        any::<u64>().prop_map(|offer| WalRecord::Cancel { offer }),
        (any::<u64>(), stage_tag(), any::<u64>())
            .prop_map(|(epoch, stage, at)| WalRecord::StageEntered { epoch, stage, at }),
        (any::<u64>(), any::<u64>(), prop::collection::vec(any::<u64>(), 0..6))
            .prop_map(|(epoch, at, swaps)| WalRecord::EpochSettled { epoch, at, swaps }),
        fail_tag().prop_map(|error| WalRecord::StepFailed { error }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(epoch, cycles, offers_examined, offers_matched)| WalRecord::PlanCommitted {
                epoch,
                cycles,
                offers_examined,
                offers_matched,
            }
        ),
        any::<u64>().prop_map(|swap| WalRecord::SwapSettled { swap }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(swap, exhausted)| WalRecord::SwapRefunded { swap, exhausted }),
        any::<[u8; 32]>().prop_map(|address| WalRecord::IdentityRegistered { address }),
        (any::<u64>(), any::<[u8; 32]>())
            .prop_map(|(ticket, address)| WalRecord::IdentityMinted { ticket, address }),
        (any::<u64>(), any::<[u8; 32]>(), any::<u64>())
            .prop_map(|(swap, address, count)| WalRecord::LeavesLeased { swap, address, count }),
    ]
}

fn offer_status() -> impl Strategy<Value = OfferStatusRecord> {
    prop_oneof![
        Just(OfferStatusRecord::Open),
        Just(OfferStatusRecord::Cancelled),
        (any::<u64>(), any::<u64>())
            .prop_map(|(epoch, swap)| OfferStatusRecord::Matched { epoch, swap }),
        Just(OfferStatusRecord::Settled),
        Just(OfferStatusRecord::Refunded),
    ]
}

fn book_entry() -> impl Strategy<Value = BookEntryRecord> {
    (any::<[u8; 32]>(), any::<u8>(), any::<[u8; 32]>(), asset(), asset(), offer_status()).prop_map(
        |(root, key_height, hashlock, gives, wants, status)| BookEntryRecord {
            root,
            key_height,
            hashlock,
            gives,
            wants,
            status,
        },
    )
}

fn metrics() -> impl Strategy<Value = MetricsRecord> {
    prop::collection::vec(any::<u64>(), 9..10).prop_map(|v| MetricsRecord {
        rounds: v[0],
        contracts_published: v[1],
        unlock_calls: v[2],
        unlock_bytes: v[3],
        claim_calls: v[4],
        refund_calls: v[5],
        direct_transfers: v[6],
        rejected_calls: v[7],
        announce_bytes: v[8],
    })
}

fn swap_line() -> impl Strategy<Value = SwapLineRecord> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u8>(), any::<bool>(), any::<bool>(), any::<u64>()),
        metrics(),
    )
        .prop_map(
            |((swap, epoch, parties, leaders), (protocol, settled, all_deal, rounds), m)| {
                SwapLineRecord {
                    swap,
                    epoch,
                    parties,
                    leaders,
                    protocol,
                    settled,
                    all_deal,
                    rounds,
                    metrics: m,
                }
            },
        )
}

fn snapshot() -> impl Strategy<Value = ExchangeSnapshot> {
    (
        (any::<u64>(), any::<[u8; 32]>(), any::<u64>(), any::<[u64; 4]>()),
        (prop_oneof![Just(None), any::<u64>().prop_map(Some)], any::<u64>(), any::<u64>()),
        (prop::collection::vec(any::<u64>(), 12..13), metrics(), swap_line()),
        (
            prop::collection::vec(book_entry(), 0..4),
            prop::collection::vec(any::<u64>(), 0..4),
            prop::collection::vec((any::<u64>(), prop::collection::vec(any::<u64>(), 0..4)), 0..3),
        ),
        (
            prop::collection::vec(
                (any::<u64>(), any::<[u8; 32]>(), any::<[u8; 32]>())
                    .prop_map(|(offer, address, secret)| MaterialRecord { offer, address, secret }),
                0..4,
            ),
            prop::collection::vec(
                (
                    any::<[u8; 32]>(),
                    any::<u8>(),
                    any::<u64>(),
                    prop::collection::vec(any::<[u8; 32]>(), 0..5),
                )
                    .prop_map(|(seed, height, next_leaf, leaves)| IdentityRecord {
                        seed,
                        height,
                        next_leaf,
                        leaves,
                    }),
                0..3,
            ),
        ),
    )
        .prop_map(
            |(
                (last_seq, config_digest, now, vacated),
                (dirty_since, mint_ticket, leaves_leased),
                (counters, storage_like, line),
                (entries, deferred, in_flight),
                (material, identities),
            )| {
                ExchangeSnapshot {
                    last_seq,
                    config_digest,
                    now,
                    vacated,
                    dirty_since,
                    mint_ticket,
                    leaves_leased,
                    report: ReportRecord {
                        epochs: counters[0],
                        offers_submitted: counters[1],
                        offers_cancelled: counters[2],
                        swaps_cleared: counters[3],
                        swaps_settled: counters[4],
                        swaps_refunded: counters[5],
                        swaps_exhausted: counters[6],
                        identities_registered: counters[7],
                        identities_minted: counters[8],
                        mints_overlapping_execution: counters[9],
                        leaves_leased: counters[10],
                        wall_ticks: counters[11],
                        storage: StorageRecord {
                            blocks: storage_like.rounds,
                            block_bytes: storage_like.unlock_bytes,
                            contract_bytes: storage_like.claim_calls,
                            asset_bytes: storage_like.refund_calls,
                            tx_bytes: storage_like.announce_bytes,
                        },
                        swaps: vec![line],
                        ..Default::default()
                    },
                    book: BookRecord {
                        first_id: mint_ticket,
                        entries,
                        deferred,
                        in_flight,
                        ..Default::default()
                    },
                    material,
                    identities,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wal_record_encode_decode_encode_is_byte_identical(rec in wal_record()) {
        let payload = rec.encode_payload();
        let back = WalRecord::decode_payload(rec.kind(), &payload);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        let back = back.unwrap();
        prop_assert_eq!(&back, &rec);
        prop_assert_eq!(back.encode_payload(), payload);
    }

    #[test]
    fn frame_streams_round_trip(records in prop::collection::vec(wal_record(), 0..8)) {
        let mut bytes = Vec::new();
        for (i, rec) in records.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64 * 3, rec));
        }
        let scan = decode_frames(&bytes).unwrap();
        prop_assert!(!scan.torn);
        prop_assert_eq!(scan.valid_len, bytes.len());
        let expect: Vec<(u64, WalRecord)> =
            records.iter().enumerate().map(|(i, r)| (i as u64 * 3, r.clone())).collect();
        let got: Vec<(u64, WalRecord)> =
            scan.frames.iter().map(|f: &Framed| (f.seq, f.record.clone())).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn truncated_frame_streams_keep_the_valid_prefix(
        records in prop::collection::vec(wal_record(), 1..6),
        cut_frac in 0u64..=1000,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, rec) in records.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64, rec));
            boundaries.push(bytes.len());
        }
        let cut = (bytes.len() as u64 * cut_frac / 1000) as usize;
        let scan = decode_frames(&bytes[..cut]).unwrap();
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(scan.frames.len(), whole);
        prop_assert_eq!(scan.valid_len, boundaries[whole]);
        prop_assert_eq!(scan.torn, cut != boundaries[whole]);
        for (i, f) in scan.frames.iter().enumerate() {
            prop_assert_eq!(&f.record, &records[i]);
        }
    }

    #[test]
    fn snapshot_encode_decode_encode_is_byte_identical(snap in snapshot()) {
        let payload = snap.encode_payload();
        let back = ExchangeSnapshot::decode_payload(&payload);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        let back = back.unwrap();
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.encode_payload(), payload);
    }
}
