//! Adversary gallery: what each kind of misbehavior costs, and to whom.
//!
//! Re-runs the two-leader swap of Figures 6–8 under every deviation the
//! paper's analysis contemplates — crashes at each protocol stage, secret
//! withholding, refusing to publish, premature secret leaks — and tabulates
//! the Figure 3 outcome each party receives. The safety theorem
//! (Theorem 4.9) is visible in every row: deviators may hurt themselves,
//! conforming parties never end Underwater.
//!
//! Run with: `cargo run --example adversaries`

use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::core::Behavior;
use atomic_swaps::digraph::{generators, VertexId};
use atomic_swaps::sim::SimRng;

fn run_with(label: &str, configure: impl FnOnce(&mut RunConfig)) {
    let digraph = generators::two_leader_triangle();
    let mut rng = SimRng::from_seed(99);
    let setup = SwapSetup::generate(digraph, &SetupConfig::default(), &mut rng)
        .expect("two-leader triangle is a valid swap");
    let mut config = RunConfig::default();
    configure(&mut config);
    let deviators: Vec<VertexId> = config.behaviors.keys().copied().collect();
    let report = SwapRunner::new(setup, config).run();
    print!("{label:<34}");
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let v = VertexId::new(i as u32);
        let marker = if deviators.contains(&v) { "*" } else { " " };
        print!(" {marker}{outcome:<11}");
    }
    println!();
    assert!(
        report.no_conforming_underwater(),
        "Theorem 4.9 violated under '{label}': {:?}",
        report.outcomes
    );
}

fn main() {
    println!("{:<34} {:<12} {:<12} {:<12}", "scenario (* = deviator)", "alice", "bob", "carol");
    println!("{}", "-".repeat(74));

    run_with("all conforming", |_| {});

    for round in [0, 1, 2, 3, 4, 5] {
        run_with(&format!("alice crashes at round {round}"), |c| {
            c.behaviors.insert(VertexId::new(0), Behavior::Halt { at_round: round });
        });
    }

    run_with("bob withholds his secret", |c| {
        c.behaviors.insert(VertexId::new(1), Behavior::WithholdSecret);
    });

    run_with("carol never publishes", |c| {
        c.behaviors.insert(VertexId::new(2), Behavior::NeverPublish { arcs: None });
    });

    run_with("alice leaks her secret early", |c| {
        c.behaviors.insert(VertexId::new(0), Behavior::PrematureReveal);
    });

    run_with("alice + bob both crash at 2", |c| {
        c.behaviors.insert(VertexId::new(0), Behavior::Halt { at_round: 2 });
        c.behaviors.insert(VertexId::new(1), Behavior::Halt { at_round: 2 });
    });

    run_with("bob publishes eagerly", |c| {
        c.behaviors.insert(VertexId::new(1), Behavior::EagerPublish);
    });

    run_with("alice publishes corrupt contract", |c| {
        c.corrupt_arcs.insert(atomic_swaps::digraph::ArcId::new(0));
    });

    println!("{}", "-".repeat(74));
    println!("No conforming party ended Underwater in any scenario (Theorem 4.9) ✓");
}
