//! A full market day on the exchange pipeline: offers stream in, epochs
//! clear them into disjoint trade cycles, every cleared slot is re-verified
//! party-side, and all in-flight swaps execute *concurrently* on sharded
//! chain sets with a deterministic merge.
//!
//! Seven parties submit barter offers. Two independent rings hide in the
//! book (usd→eur→gbp→usd and btc↔eth); the "doge" offer has no
//! counterparty yet and rolls over, clearing in the *second* epoch when one
//! arrives; one offer is withdrawn before it can match.
//!
//! Run with: `cargo run --example market_clearing`

use atomic_swaps::core::exchange::{Exchange, ExchangeConfig, ExchangeParty};
use atomic_swaps::market::AssetKind;
use atomic_swaps::sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SimRng::from_seed(42);
    let mut party = |gives: &str, wants: &str| {
        ExchangeParty::generate(&mut rng, 4, AssetKind::new(gives), AssetKind::new(wants))
    };

    // Who wants what.
    let book = [
        ("ana", party("usd", "gbp")),
        ("boris", party("eur", "usd")),
        ("chloe", party("gbp", "eur")),
        ("dmitri", party("btc", "eth")),
        ("elena", party("eth", "btc")),
        ("felix", party("doge", "btc")), // no doge taker yet
        ("gary", party("nft", "usd")),   // will get cold feet
    ];

    // Two worker threads: cleared cycles are party- and chain-disjoint, so
    // in-flight swaps run concurrently; the report is identical either way.
    let mut exchange = Exchange::new(ExchangeConfig { threads: 2, ..Default::default() });
    let mut ids = Vec::new();
    for (name, p) in &book {
        let id = exchange.submit(p.clone());
        println!("{name} submitted {id}: gives {}, wants {}", p.gives, p.wants);
        ids.push(id);
    }
    // Gary withdraws before the epoch closes; a cancelled offer can never
    // be matched.
    exchange.cancel(ids[6])?;
    println!("gary cancelled {}", ids[6]);

    // Epoch 0: the service clears the open book, every party re-checks its
    // published slot (§4.2 — the service is untrusted), and both rings
    // execute concurrently.
    let executed = exchange.run_epoch()?;
    println!("\nEpoch 0 cleared and executed {} swap(s):", executed.len());
    for swap in &executed {
        println!(
            "  {} ({} parties): all deal = {}, settled = {}",
            swap.id,
            swap.report.outcomes.len(),
            swap.report.all_deal(),
            swap.report.settled,
        );
        assert!(swap.report.all_deal());
    }
    for (i, (name, _)) in book.iter().enumerate() {
        println!("  {name}: {}", exchange.service().status(ids[i]).unwrap());
    }

    // Epoch 1: a doge taker finally arrives, so felix's leftover offer
    // clears against it — continuous clearing, not one-shot.
    let hana = party("btc", "doge");
    exchange.submit(hana);
    let executed = exchange.run_epoch()?;
    println!("\nEpoch 1 cleared and executed {} swap(s):", executed.len());
    assert_eq!(executed.len(), 1);
    assert!(executed[0].report.all_deal());
    println!("  felix now: {}", exchange.service().status(ids[5]).unwrap());

    // The aggregate observable: counters over all epochs, merged storage
    // across every chain of every executed swap.
    let report = exchange.report();
    println!(
        "\nExchange report: {} epochs, {} offers ({} cancelled), \
         {} swaps cleared, {} settled, {} refunded",
        report.epochs,
        report.offers_submitted,
        report.offers_cancelled,
        report.swaps_cleared,
        report.swaps_settled,
        report.swaps_refunded,
    );
    println!(
        "  simulated wall: {} ticks; ledger: {} chains, {} bytes stored, integrity {}",
        report.wall_ticks,
        exchange.ledger().len(),
        report.storage.total_bytes(),
        exchange.ledger().verify_integrity(),
    );
    Ok(())
}
