//! A full market day on the *staged* exchange pipeline: offers stream in
//! at any time, epochs move through the
//! `Clearing → Provisioning → Executing → Settling` stage machine, and the
//! pipeline overlaps epoch k+1's clearing with epoch k's execution on
//! disjoint chain shards.
//!
//! Seven parties submit barter offers. Two independent rings hide in the
//! book (usd→eur→gbp→usd and btc↔eth); the "doge" offer has no
//! counterparty yet; one offer is withdrawn before it can match. While
//! epoch 0 is still *executing*, a doge taker arrives — the next clearing
//! delta picks it up immediately (epoch 1 clears in the shadow of epoch
//! 0's execution) instead of waiting for settlement.
//!
//! Run with: `cargo run --example market_clearing`

use atomic_swaps::core::exchange::{
    EpochStage, Exchange, ExchangeConfig, ExchangeParty, StageCosts, StepEvent,
};
use atomic_swaps::market::AssetKind;
use atomic_swaps::sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SimRng::from_seed(42);
    let mut party = |gives: &str, wants: &str| {
        ExchangeParty::generate(&mut rng, 4, AssetKind::new(gives), AssetKind::new(wants))
    };

    // Who wants what.
    let book = [
        ("ana", party("usd", "gbp")),
        ("boris", party("eur", "usd")),
        ("chloe", party("gbp", "eur")),
        ("dmitri", party("btc", "eth")),
        ("elena", party("eth", "btc")),
        ("felix", party("doge", "btc")), // no doge taker yet
        ("gary", party("nft", "usd")),   // will get cold feet
    ];
    let hana = party("btc", "doge"); // arrives mid-epoch

    // Two worker threads (cleared cycles are party- and chain-disjoint, so
    // in-flight swaps run concurrently), and explicit simulated stage
    // costs so the overlap shows up in the wall-tick attribution.
    let mut exchange = Exchange::new(ExchangeConfig {
        threads: 2,
        stage_costs: StageCosts {
            clearing_base: 10,
            clearing_per_examined: 1,
            clearing_per_cycle: 1,
            provisioning_base: 5,
            provisioning_per_party: 1,
            settling_base: 5,
            settling_per_swap: 1,
        },
        ..Default::default()
    });
    let mut ids = Vec::new();
    for (name, p) in &book {
        let id = exchange.submit(p.clone());
        println!("{name} submitted {id}: gives {}, wants {}", p.gives, p.wants);
        ids.push(id);
    }
    // Gary withdraws before the epoch closes; a cancelled offer can never
    // be matched.
    exchange.cancel(ids[6])?;
    println!("gary cancelled {}", ids[6]);

    // Drive the stage machine one transition at a time. The moment epoch 0
    // enters `Executing`, hana's btc→doge offer arrives — and the very
    // next transition admits epoch 1's clearing, while epoch 0 is still
    // running its swaps.
    println!("\nPipeline transitions:");
    let mut hana_submitted = false;
    loop {
        match exchange.step()? {
            StepEvent::StageEntered { epoch, stage, at } => {
                println!("  {at}: epoch {epoch} -> {stage}");
                if stage == EpochStage::Executing && !hana_submitted {
                    hana_submitted = true;
                    let id = exchange.submit(hana.clone());
                    println!("  {at}: hana submitted {id} mid-epoch: gives btc, wants doge");
                }
            }
            StepEvent::EpochSettled { epoch, at, executed } => {
                println!("  {at}: epoch {epoch} settled {} swap(s):", executed.len());
                for swap in &executed {
                    println!(
                        "      {} ({} parties): all deal = {}, settled = {}",
                        swap.id,
                        swap.report.outcomes.len(),
                        swap.report.all_deal(),
                        swap.report.settled,
                    );
                    assert!(swap.report.all_deal());
                }
            }
            StepEvent::Quiescent => break,
        }
    }

    println!("\nOffer statuses:");
    for (i, (name, _)) in book.iter().enumerate() {
        println!("  {name}: {}", exchange.service().status(ids[i]).unwrap());
    }

    // The aggregate observable: counters over all epochs, merged storage
    // across every chain of every executed swap, and the per-stage wall
    // attribution — epoch 1's clearing hid under epoch 0's execution, so
    // `clearing` ticks stay close to one epoch's worth.
    let report = exchange.report();
    println!(
        "\nExchange report: {} epochs, {} offers ({} cancelled), \
         {} swaps cleared, {} settled, {} refunded",
        report.epochs,
        report.offers_submitted,
        report.offers_cancelled,
        report.swaps_cleared,
        report.swaps_settled,
        report.swaps_refunded,
    );
    println!(
        "  simulated wall: {} ticks (clearing {}, provisioning {}, executing {}, settling {})",
        report.wall_ticks,
        report.stage_ticks.clearing,
        report.stage_ticks.provisioning,
        report.stage_ticks.executing,
        report.stage_ticks.settling,
    );
    assert_eq!(report.stage_ticks.total(), report.wall_ticks);
    println!(
        "  ledger: {} chains, {} bytes stored, integrity {}",
        exchange.ledger().len(),
        report.storage.total_bytes(),
        exchange.ledger().verify_integrity(),
    );
    assert_eq!(report.swaps_settled, 3);
    Ok(())
}
