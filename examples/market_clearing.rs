//! A full market day: offers → clearing → verification → atomic execution.
//!
//! Seven parties submit barter offers to the (untrusted) clearing service
//! of §4.2. The service matches them into trade cycles, elects leaders, and
//! publishes specs; each party re-verifies its own slot before
//! participating; the runner then executes every cleared swap atomically.
//!
//! Run with: `cargo run --example market_clearing`

use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::crypto::{MssKeypair, Secret};
use atomic_swaps::market::{verify_cleared_swap, AssetKind, ClearingService, Offer};
use atomic_swaps::sim::{Delta, SimRng, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Who wants what. Two independent rings hide in these offers:
    // a 3-cycle (usd→eur→gbp→usd) and a 2-cycle (btc↔eth); the "doge"
    // offer cannot clear.
    let book = [
        ("ana", "usd", "gbp"),
        ("boris", "eur", "usd"),
        ("chloe", "gbp", "eur"),
        ("dmitri", "btc", "eth"),
        ("elena", "eth", "btc"),
        ("felix", "doge", "btc"),
    ];
    let mut service = ClearingService::new();
    let mut offers = Vec::new();
    for (i, (name, gives, wants)) in book.iter().enumerate() {
        let keypair = MssKeypair::from_seed_with_height([i as u8 + 1; 32], 4);
        let secret = Secret::from_bytes([i as u8 + 101; 32]);
        let offer = Offer {
            key: keypair.public_key(),
            hashlock: secret.hashlock(),
            gives: AssetKind::new(*gives),
            wants: AssetKind::new(*wants),
        };
        let id = service.submit(offer.clone());
        println!("{name} submitted {id}: gives {gives}, wants {wants}");
        offers.push(offer);
    }

    let delta = Delta::from_ticks(10);
    let cleared = service.clear(delta, SimTime::ZERO)?;
    println!("\nCleared {} swap instance(s).", cleared.len());

    for (n, swap) in cleared.iter().enumerate() {
        println!(
            "\nSwap {n}: {} parties, leaders {:?}",
            swap.spec.digraph.vertex_count(),
            swap.spec.leaders
        );
        // Every involved party re-checks the service's honesty (§4.2).
        for (pos, offer_id) in swap.offer_of_vertex.iter().enumerate() {
            let my_offer = &offers[offer_id.raw() as usize];
            let vertex = atomic_swaps::digraph::VertexId::new(pos as u32);
            verify_cleared_swap(swap, vertex, my_offer, SimTime::ZERO)?;
        }
        println!("  all parties verified the published spec ✓");

        // Execute the cleared digraph atomically. (The runner provisions its
        // own chains/keys for the digraph shape — the cleared spec told the
        // parties *what* to trade; here we watch them trade it.)
        let mut rng = SimRng::from_seed(7000 + n as u64);
        let setup =
            SwapSetup::generate(swap.spec.digraph.clone(), &SetupConfig::default(), &mut rng)?;
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        for (i, outcome) in report.outcomes.iter().enumerate() {
            println!("  party {i}: {outcome}");
        }
        assert!(report.all_deal());
    }

    println!("\nUnmatched offers stay in the book for the next round.");
    Ok(())
}
