//! Quickstart: the paper's §1 motivating example, end to end.
//!
//! Alice wants to pay for Carol's Cadillac in alt-coins, Bob bridges
//! alt-coins to bitcoin: a three-way swap on a directed cycle. This example
//! provisions three blockchains, runs the full hashkey protocol with every
//! party conforming, and prints the deploy/trigger timeline — which matches
//! Figures 1 and 2 of the paper tick for tick.
//!
//! Run with: `cargo run --example quickstart`

use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::digraph::generators;
use atomic_swaps::sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The swap digraph: alice → bob (alt-coins), bob → carol (bitcoin),
    // carol → alice (Cadillac title).
    let digraph = generators::herlihy_three_party();
    println!("Swap digraph:\n{}", digraph.render());

    let mut rng = SimRng::from_seed(2018);
    let setup = SwapSetup::generate(digraph, &SetupConfig::default(), &mut rng)?;
    println!(
        "Spec: {} parties, {} leader(s), diam(D) = {}, Δ = {} ticks, start = {}",
        setup.spec.digraph.vertex_count(),
        setup.spec.leaders.len(),
        setup.spec.diam,
        setup.spec.delta.ticks(),
        setup.spec.start,
    );
    let worst_case = setup.spec.worst_case_duration();
    let start = setup.spec.start;

    let report = SwapRunner::new(setup, RunConfig::default()).run();

    println!("\nExecution trace (compare Figures 1 and 2):");
    for entry in report.trace.entries() {
        if entry.kind != "tx.rejected" {
            println!("  {entry}");
        }
    }

    println!("\nOutcomes:");
    for (i, outcome) in report.outcomes.iter().enumerate() {
        println!("  party {i}: {outcome}");
    }

    let completion = report.completion.expect("all-conforming swaps complete");
    println!(
        "\nCompleted {} after start (Theorem 4.7 bound: 2·diam·Δ = {}).",
        completion - start,
        worst_case,
    );
    assert!(report.all_deal(), "every conforming run must end in Deal");
    assert!(completion - start <= worst_case, "Theorem 4.7 must hold");
    println!("All swaps executed atomically ✓");
    Ok(())
}
