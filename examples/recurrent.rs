//! Recurrent swaps (§5): the same parties trade round after round.
//!
//! Market makers don't swap once — they rebalance continuously. The §5
//! remark makes the protocol recurrent by distributing the *next* round's
//! hashlocks during the *current* round's Phase Two, so consecutive rounds
//! pipeline without re-clearing. This example runs five rounds of the
//! three-party swap and shows the rotation of hashlocks and the steady
//! cadence of settlements.
//!
//! Run with: `cargo run --example recurrent`

use atomic_swaps::core::recurrent::RecurrentSession;
use atomic_swaps::digraph::generators;
use atomic_swaps::sim::{Delta, SimRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let digraph = generators::herlihy_three_party();
    let delta = Delta::from_ticks(10);
    let mut session = RecurrentSession::new(digraph, delta, &mut SimRng::from_seed(55));

    println!("round  start      settled    outcomes           next-round hashlocks");
    println!("{}", "-".repeat(78));
    let rounds = session.run_rounds(5, &mut SimRng::from_seed(56))?;
    for (i, round) in rounds.iter().enumerate() {
        let outcomes: Vec<String> = round.report.outcomes.iter().map(|o| o.to_string()).collect();
        let locks: Vec<String> =
            round.next_hashlocks.iter().take(2).map(|h| h.to_string()).collect();
        println!(
            "{:>5}  {:<9} {:<10} {:<18} {} …",
            i,
            round.started_at.to_string(),
            round.report.completion.expect("settles").to_string(),
            outcomes.join(","),
            locks.join(" "),
        );
    }
    println!("{}", "-".repeat(78));
    println!(
        "{} rounds settled; every party ended every round in Deal ✓",
        session.rounds_completed()
    );
    Ok(())
}
