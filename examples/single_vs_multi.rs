//! Single-leader timeouts vs general hashkeys (§4.6 ablation).
//!
//! On single-leader digraphs the protocol can drop hashkeys entirely and
//! use classic HTLCs with the Lemma 4.13 timeout ladder — "reducing message
//! sizes and eliminating the need for digital signatures". This example
//! runs *both* protocols on the same digraph families and compares bytes
//! on-chain, message bytes, and completion times.
//!
//! Run with: `cargo run --example single_vs_multi`

use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::core::{single_leader_of, SingleLeaderSwap};
use atomic_swaps::digraph::{generators, Digraph};
use atomic_swaps::sim::{Delta, SimRng, SimTime};

fn compare(name: &str, digraph: Digraph) -> Result<(), Box<dyn std::error::Error>> {
    let leader = single_leader_of(&digraph).expect("family has a single leader");
    let delta = Delta::from_ticks(10);

    // §4.6 protocol: plain HTLCs with the timeout ladder.
    let mut rng = SimRng::from_seed(11);
    let simple =
        SingleLeaderSwap::new(digraph.clone(), leader, delta, SimTime::ZERO, &mut rng)?.run();

    // General protocol: hashkeys with signature chains.
    let mut rng = SimRng::from_seed(11);
    let setup = SwapSetup::generate(digraph, &SetupConfig::default(), &mut rng)?;
    let start = setup.spec.start;
    let general = SwapRunner::new(setup, RunConfig::default()).run();

    assert!(simple.all_deal() && general.all_deal());
    let simple_done = simple.completion.expect("completes") - SimTime::ZERO;
    let general_done = general.completion.expect("completes") - (start - delta.times(1));
    println!(
        "{name:<14} {:>14} {:>14} {:>12} {:>12} {:>10} {:>10}",
        simple.storage_bytes,
        general.storage.total_bytes(),
        simple.reveal_bytes,
        general.metrics.unlock_bytes,
        simple_done.ticks(),
        general_done.ticks(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "digraph", "htlc bytes", "hashkey bytes", "htlc msg", "hashkey msg", "htlc t", "hashkey t"
    );
    println!("{}", "-".repeat(92));
    compare("cycle(3)", generators::herlihy_three_party())?;
    compare("cycle(5)", generators::cycle(5))?;
    compare("cycle(8)", generators::cycle(8))?;
    compare("star(4)", generators::star(4))?;
    compare("flower(3,3)", generators::flower(3, 3))?;
    println!("{}", "-".repeat(92));
    println!(
        "The §4.6 variant stores and transmits orders of magnitude less — that is why\n\
         the paper singles out single-leader digraphs as the practical common case."
    );
    Ok(())
}
