//! Single-leader timeouts vs general hashkeys (§4.6 ablation) — one
//! engine, two protocols.
//!
//! On single-leader digraphs the protocol can drop hashkeys entirely and
//! use classic HTLCs with the Lemma 4.13 timeout ladder — "reducing message
//! sizes and eliminating the need for digital signatures". Since the
//! protocol became a pluggable axis (`SwapProtocol`), both variants run on
//! the *same* event-driven engine: this example executes each digraph
//! family under both `ProtocolKind`s and compares bytes on-chain, message
//! bytes, and completion times, then lets the `Exchange` pick per cleared
//! cycle and prints its choices.
//!
//! Run with: `cargo run --example single_vs_multi`

use atomic_swaps::core::exchange::{Exchange, ExchangeConfig, ExchangeParty, ProtocolPolicy};
use atomic_swaps::core::runner::{RunConfig, RunReport};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::core::{single_leader_of, ProtocolKind, SwapInstance};
use atomic_swaps::digraph::{generators, Digraph};
use atomic_swaps::market::AssetKind;
use atomic_swaps::sim::SimRng;

fn run(digraph: Digraph, protocol: ProtocolKind) -> Result<RunReport, Box<dyn std::error::Error>> {
    let mut rng = SimRng::from_seed(11);
    let setup = SwapSetup::generate(digraph, &SetupConfig::default(), &mut rng)?;
    Ok(SwapInstance::new(0, setup, RunConfig::default()).with_protocol(protocol).run_lockstep())
}

fn compare(name: &str, digraph: Digraph) -> Result<(), Box<dyn std::error::Error>> {
    assert!(single_leader_of(&digraph).is_some(), "family has a single leader");
    let simple = run(digraph.clone(), ProtocolKind::Htlc)?;
    let general = run(digraph, ProtocolKind::Hashkey)?;
    assert!(simple.all_deal() && general.all_deal());
    let done = |r: &RunReport| r.completion.expect("completes").ticks();
    println!(
        "{name:<14} {:>14} {:>14} {:>12} {:>12} {:>10} {:>10}",
        simple.storage.total_bytes(),
        general.storage.total_bytes(),
        simple.metrics.unlock_bytes,
        general.metrics.unlock_bytes,
        done(&simple),
        done(&general),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "digraph", "htlc bytes", "hashkey bytes", "htlc msg", "hashkey msg", "htlc t", "hashkey t"
    );
    println!("{}", "-".repeat(92));
    compare("cycle(3)", generators::herlihy_three_party())?;
    compare("cycle(5)", generators::cycle(5))?;
    compare("cycle(8)", generators::cycle(8))?;
    compare("star(4)", generators::star(4))?;
    compare("flower(3,3)", generators::flower(3, 3))?;
    println!("{}", "-".repeat(92));
    println!(
        "The §4.6 variant stores and transmits orders of magnitude less — that is why\n\
         the paper singles out single-leader digraphs as the practical common case.\n"
    );

    // The exchange makes the choice per cleared cycle: simple trade cycles
    // are single-leader feasible and run on cheap HTLCs automatically.
    let mut rng = SimRng::from_seed(12);
    let mut exchange = Exchange::new(ExchangeConfig {
        protocol: ProtocolPolicy::Auto,
        ..ExchangeConfig::default()
    });
    for ring in 0..3usize {
        for p in 0..3 {
            exchange.submit(ExchangeParty::generate(
                &mut rng,
                4,
                AssetKind::new(format!("r{ring}k{p}")),
                AssetKind::new(format!("r{ring}k{}", (p + 1) % 3)),
            ));
        }
    }
    let executed = exchange.drive_until_quiescent()?;
    println!("Exchange epoch: {} cleared cycles, protocol chosen per cycle:", executed.len());
    for summary in &exchange.report().swaps {
        println!(
            "  {}: {} parties, {} leader(s) -> {}  (settled: {})",
            summary.swap, summary.parties, summary.leaders, summary.protocol, summary.settled
        );
    }
    assert!(exchange.report().swaps.iter().all(|s| s.protocol == ProtocolKind::Htlc));
    Ok(())
}
