//! The two-leader digraph of Figures 6–8: why hashkeys exist.
//!
//! Three parties trade across all six arcs, so the minimum feedback vertex
//! set has two vertexes. This example shows the whole §4 story on that
//! digraph:
//!
//! 1. no fixed per-arc timeout assignment exists (Figure 6, right),
//! 2. the admissible hashkey paths per arc (Figure 7),
//! 3. concurrent contract propagation from both leaders (Figure 8),
//! 4. the protocol nevertheless completing atomically.
//!
//! Run with: `cargo run --example two_leader`

use std::collections::BTreeSet;

use atomic_swaps::core::hashkey::HashkeyTable;
use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::core::timeout_assignment_feasible;
use atomic_swaps::digraph::{generators, VertexId};
use atomic_swaps::pebble::LazyPebbleGame;
use atomic_swaps::sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let digraph = generators::two_leader_triangle();
    println!("Digraph (all six arcs among alice, bob, carol):\n{}", digraph.render());

    // --- Figure 6: timeouts alone cannot work. -------------------------
    let one_leader: BTreeSet<VertexId> = [VertexId::new(0)].into();
    let two_leaders: BTreeSet<VertexId> = [VertexId::new(0), VertexId::new(1)].into();
    println!(
        "Timeout assignment with leaders {{alice}}: {}",
        if timeout_assignment_feasible(&digraph, &one_leader) { "feasible" } else { "INFEASIBLE" }
    );
    println!(
        "Timeout assignment with leaders {{alice, bob}}: feasible = {} (but two secrets\n  now need per-path deadlines — hashkeys)",
        timeout_assignment_feasible(&digraph, &two_leaders)
    );

    // --- Figure 7: hashkey paths per arc. -------------------------------
    let leaders = [VertexId::new(0), VertexId::new(1)];
    let table = HashkeyTable::build(&digraph, &leaders);
    println!("\nAdmissible hashkeys per arc (Figure 7):");
    print!("{}", table.render(&digraph, &leaders));

    // --- Figure 8: concurrent propagation. ------------------------------
    println!("\nLazy pebble game from both leaders (Figure 8 rounds):");
    let leader_set: BTreeSet<VertexId> = leaders.iter().copied().collect();
    let mut game = LazyPebbleGame::new(&digraph, &leader_set);
    let mut round = 1;
    loop {
        let placed = game.step();
        if placed.is_empty() {
            break;
        }
        println!("  round {round}: contracts appear on {placed:?}");
        round += 1;
        if game.all_pebbled() {
            break;
        }
    }

    // --- And the protocol itself. ---------------------------------------
    let mut rng = SimRng::from_seed(6);
    let setup = SwapSetup::generate(digraph, &SetupConfig::default(), &mut rng)?;
    println!(
        "\nRunning the full protocol: leaders {:?}, diam = {}",
        setup.spec.leaders, setup.spec.diam
    );
    let start = setup.spec.start;
    let bound = setup.spec.worst_case_duration();
    let report = SwapRunner::new(setup, RunConfig::default()).run();
    for (i, outcome) in report.outcomes.iter().enumerate() {
        println!("  party {i}: {outcome}");
    }
    let completion = report.completion.expect("conforming run completes");
    println!("Completed {} after start (bound 2·diam·Δ = {}) ✓", completion - start, bound);
    assert!(report.all_deal());
    Ok(())
}
