#!/usr/bin/env python3
"""Guard the in-tree bench artifacts (repo-root BENCH_E16–E23.json).

CI regenerates target/BENCH_*.json on every run and copies them to the
repo root; the committed repo-root copies are the tracked perf
trajectory. This check reads the freshly copied repo-root files and
fails when their *deterministic* fields (simulated wall ticks, per-stage
attribution, executing-stage occupancy, storage bytes, WAL/snapshot
record counts, per-swap reports — everything seed-derived) drift from
what is committed at HEAD, meaning the committed artifacts are stale and
must be refreshed with
`cp target/BENCH_E{16,17,18,19,20,21,22,23}.json .` and committed.
Host-dependent timings (elapsed_ms, swaps_per_sec, offers_per_sec,
cycles_per_sec, tx_per_sec, speedup_at_1e5, speedup_vs_fresh,
speedup_at_1e4, journal_spread, wal_off_ms, wal_on_ms, wal_overhead,
recover_ms, recovery_speedup, host_parallelism) are ignored, so the
check is reproducible across machines.
"""

import json
import subprocess
import sys

ARTIFACTS = (
    "BENCH_E16.json",
    "BENCH_E17.json",
    "BENCH_E18.json",
    "BENCH_E19.json",
    "BENCH_E20.json",
    "BENCH_E21.json",
    "BENCH_E22.json",
    "BENCH_E23.json",
)
HOST_DEPENDENT = {
    "elapsed_ms",
    "swaps_per_sec",
    "offers_per_sec",
    "cycles_per_sec",
    "tx_per_sec",
    "speedup_at_1e5",
    "speedup_vs_fresh",
    "speedup_at_1e4",
    "journal_spread",
    "wal_off_ms",
    "wal_on_ms",
    "wal_overhead",
    "recover_ms",
    "recovery_speedup",
    "host_parallelism",
}


def deterministic(node):
    """Strip host-dependent fields, recursively."""
    if isinstance(node, dict):
        return {k: deterministic(v) for k, v in node.items() if k not in HOST_DEPENDENT}
    if isinstance(node, list):
        return [deterministic(item) for item in node]
    return node


def main():
    ok = True
    for name in ARTIFACTS:
        with open(name) as f:
            fresh = deterministic(json.load(f))
        committed = subprocess.run(
            ["git", "show", f"HEAD:{name}"], capture_output=True, text=True
        )
        if committed.returncode != 0:
            print(f"{name}: not tracked at HEAD — commit the repo-root copy")
            ok = False
            continue
        if deterministic(json.loads(committed.stdout)) != fresh:
            print(f"{name}: deterministic fields drifted — refresh the committed artifact")
            ok = False
        else:
            print(f"{name}: deterministic fields match the committed artifact")
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
