//! `atomic-swaps`: a complete, runnable reproduction of Maurice Herlihy's
//! *Atomic Cross-Chain Swaps* (PODC 2018).
//!
//! A cross-chain swap is a directed graph `D` whose vertexes are parties
//! and whose arcs are proposed asset transfers, each living on its own
//! blockchain. For any strongly connected `D` and any feedback vertex set
//! `L` of *leaders*, the paper gives an atomic swap protocol built from
//! hashed timelock contracts generalized with *hashkeys* — and proves no
//! protocol exists outside those conditions. This workspace implements all
//! of it, from SHA-256 up:
//!
//! | layer | crate |
//! |---|---|
//! | discrete-event simulation, the Δ timing model | [`sim`] |
//! | swap digraphs, feedback vertex sets, generators | [`digraph`] |
//! | SHA-256, Merkle trees, Lamport/Merkle signatures, hashkey chains | [`crypto`] |
//! | simulated blockchains, assets, escrow, storage metering | [`chain`] |
//! | the Figures 4–5 swap contract and classic HTLCs | [`contract`] |
//! | the §4.4 pebble games | [`pebble`] |
//! | the untrusted market-clearing service (§4.2) | [`market`] |
//! | the protocol itself: runners, adversaries, outcomes | [`core`] |
//!
//! # Quick start
//!
//! ```
//! use atomic_swaps::core::runner::{RunConfig, SwapRunner};
//! use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
//! use atomic_swaps::digraph::generators;
//! use atomic_swaps::sim::SimRng;
//!
//! // Alice trades alt-coins to Bob, Bob bitcoin to Carol, Carol her
//! // Cadillac title to Alice (§1 of the paper).
//! let digraph = generators::herlihy_three_party();
//! let setup = SwapSetup::generate(
//!     digraph,
//!     &SetupConfig::default(),
//!     &mut SimRng::from_seed(2018),
//! )?;
//! let report = SwapRunner::new(setup, RunConfig::default()).run();
//! assert!(report.all_deal());
//! # Ok::<(), atomic_swaps::core::setup::SetupError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `swap-bench`'s `experiments`
//! binary for the per-theorem/per-figure validation harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use swap_chain as chain;
pub use swap_contract as contract;
pub use swap_core as core;
pub use swap_crypto as crypto;
pub use swap_digraph as digraph;
pub use swap_market as market;
pub use swap_pebble as pebble;
pub use swap_sim as sim;
