//! Clearing-mode invariance at the exchange tier.
//!
//! `ClearingMode::Indexed` (the incremental index) and
//! `ClearingMode::FullRescan` (the reference matcher) must publish
//! byte-identical `ExchangeReport`s — pinned via `Debug` — under both
//! leader strategies and across 1/2/8 pool workers. The book rolls: a
//! second wave re-enters the *same parties* with mirrored trades while
//! their first swaps are still executing, so every wave-two offer parks
//! under a live reservation and must wake after settlement. That
//! exercises the index's parked set, deferral bookkeeping, and
//! settlement-triggered re-admission end to end — exactly the paths
//! where an incremental matcher could drift from the full rescan.

use atomic_swaps::core::exchange::{
    EpochStage, Exchange, ExchangeConfig, ExchangeParty, StepEvent,
};
use atomic_swaps::market::{AssetKind, ClearingMode, LeaderStrategy, OfferStatus};
use atomic_swaps::sim::SimRng;

/// Disjoint rings of the given sizes: party `p` of ring `c` gives
/// `r{c}k{p}` and wants `r{c}k{p+1}`.
fn ring_book(sizes: &[usize], rng: &mut SimRng) -> Vec<ExchangeParty> {
    let mut parties = Vec::new();
    for (c, &len) in sizes.iter().enumerate() {
        for p in 0..len {
            parties.push(ExchangeParty::generate(
                rng,
                4,
                AssetKind::new(format!("r{c}k{p}")),
                AssetKind::new(format!("r{c}k{}", (p + 1) % len)),
            ));
        }
    }
    parties
}

/// The same parties trading back: each keeps its identity and hashlock
/// but gives what it wanted and wants what it gave, so wave two forms
/// the reverse rings — matchable only once the parties' first swaps
/// resolve and release their reservations.
fn mirrored(parties: &[ExchangeParty]) -> Vec<ExchangeParty> {
    parties
        .iter()
        .map(|p| {
            let mut back = p.clone();
            std::mem::swap(&mut back.gives, &mut back.wants);
            back
        })
        .collect()
}

/// Drives the rolling book to quiescence and returns the full report
/// plus every offer's terminal status, both pinned via `Debug`.
fn drive(mode: ClearingMode, strategy: LeaderStrategy, threads: usize) -> String {
    let mut exchange = Exchange::new(ExchangeConfig {
        threads,
        executing_slots: 2,
        clearing_mode: mode,
        leader_strategy: strategy,
        ..Default::default()
    });
    let mut rng = SimRng::from_seed(0xC1EA);
    let wave_one = ring_book(&[2, 3, 4], &mut rng);
    let wave_two = mirrored(&wave_one);

    let mut ids = Vec::new();
    for p in wave_one {
        ids.push(exchange.submit(p));
    }
    // Admission + clearing completion: wave one moves into execution.
    for _ in 0..2 {
        exchange.step().expect("pipeline steps");
    }
    assert!(
        exchange.stages().iter().any(|(_, s)| *s != EpochStage::Settling),
        "wave one is still in flight when wave two lands"
    );
    // Every wave-two party is reserved by its in-flight swap, so these
    // offers park; the epoch that admits them clears nothing.
    for p in wave_two {
        ids.push(exchange.submit(p));
    }
    assert!(
        !exchange.service().reserved_addresses().is_empty(),
        "wave two submits under live reservations"
    );
    loop {
        if let StepEvent::Quiescent = exchange.step().expect("pipeline steps") {
            break;
        }
    }

    // The parked wave woke after settlement and cleared: every offer of
    // both waves settles, or the deferral path is broken.
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(
            exchange.service().status(*id),
            Some(OfferStatus::Settled),
            "offer {i} under {mode} / {strategy:?} / {threads} workers"
        );
    }
    let statuses: Vec<_> = ids.iter().map(|id| exchange.service().status(*id)).collect();
    let report = exchange.into_report();
    assert_eq!(report.swaps_settled, 6, "both waves' rings settle");
    assert_eq!(report.stage_ticks.total(), report.wall_ticks);
    format!("{report:?}\n{statuses:?}")
}

/// The acceptance pin: reports are byte-invariant across clearing modes
/// and 1/2/8 pool workers, under both leader strategies.
#[test]
fn reports_byte_invariant_across_modes_strategies_and_workers() {
    for strategy in [LeaderStrategy::MinimumExact, LeaderStrategy::PreferSingleLeader] {
        let baseline = drive(ClearingMode::Indexed, strategy, 1);
        for mode in [ClearingMode::Indexed, ClearingMode::FullRescan] {
            for threads in [1, 2, 8] {
                assert_eq!(
                    baseline,
                    drive(mode, strategy, threads),
                    "{mode} / {strategy:?} / {threads} workers"
                );
            }
        }
    }
}
