//! Crash-point sweep over the durable exchange's write-ahead log.
//!
//! An uncrashed, journaled run of a six-wave rolling book is the oracle.
//! Its synced WAL is then truncated at *every* record boundary (plus one
//! torn mid-record tail), each truncation is recovered with
//! [`Exchange::recover`], the driver finishes the remaining waves, and the
//! final [`ExchangeReport`] must be byte-identical to the oracle's — at
//! host worker counts 1, 2, and 8.
//!
//! The driver is deliberately *resumable*: which wave to inject next is
//! recomputed from the recovered report (offer counts and admitted
//! epochs), never carried over host state, so the continuation after a
//! crash issues exactly the commands the uncrashed run would have.

use std::path::{Path, PathBuf};

use swap_core::exchange::{
    Exchange, ExchangeConfig, ExchangeReport, JournalConfig, PartySeed, StepEvent,
};
use swap_crypto::Secret;
use swap_market::AssetKind;
use swap_sim::SimRng;
use swap_store::{decode_frames, WAL_FILE};

/// Ring sizes of the six waves — mixed 2/3/4-party cycles, E19-style.
const WAVE_SIZES: [usize; 6] = [2, 3, 4, 2, 3, 4];

fn config(threads: usize) -> ExchangeConfig {
    ExchangeConfig { threads, executing_slots: 2, ..Default::default() }
}

fn journal(dir: &Path, snapshot_every: u64) -> JournalConfig {
    JournalConfig { snapshot_every, ..JournalConfig::new(dir) }
}

/// A fresh scratch directory under the test-private target tmpdir.
fn store_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("crash-recovery").join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale store removable");
    }
    std::fs::create_dir_all(&dir).expect("store dir creatable");
    dir
}

/// Wave `w`'s parties: one ring of [`WAVE_SIZES`]`[w]` mutually-trading
/// offers, derived from a per-wave seed so resubmission after recovery
/// rebuilds byte-identical parties.
fn wave_seeds(w: usize) -> Vec<PartySeed> {
    let len = WAVE_SIZES[w];
    let mut rng = SimRng::from_seed(0xC7A5 + w as u64);
    (0..len)
        .map(|p| PartySeed {
            seed: rng.bytes32(),
            key_height: 2,
            secret: Secret::random(&mut rng),
            gives: AssetKind::new(format!("w{w}k{p}")),
            wants: AssetKind::new(format!("w{w}k{}", (p + 1) % len)),
        })
        .collect()
}

/// How many waves the exchange has already been fed, recomputed from the
/// durable offer count (each wave's size is fixed, so the count identifies
/// the prefix).
fn waves_submitted(report: &ExchangeReport) -> usize {
    let mut total = 0u64;
    for (w, &size) in WAVE_SIZES.iter().enumerate() {
        total += size as u64;
        if report.offers_submitted < total {
            return w;
        }
    }
    WAVE_SIZES.len()
}

/// Drives the rolling book to quiescence, injecting wave `w` as soon as
/// epoch `w` has been admitted. Safe to call on a freshly recovered
/// exchange: the next wave is recomputed from the report, and a pending
/// trigger (epoch admitted pre-crash, injection lost with the tail) fires
/// before the first step — the same state point the uncrashed run injected
/// at.
fn drive_to_quiescence(exchange: &mut Exchange) {
    let mut next = waves_submitted(exchange.report());
    loop {
        if next < WAVE_SIZES.len() && exchange.report().epochs >= next as u64 {
            exchange.submit_seeded(wave_seeds(next));
            next += 1;
            continue;
        }
        if let StepEvent::Quiescent = exchange.step().expect("pipeline advances") {
            break;
        }
    }
    assert_eq!(next, WAVE_SIZES.len(), "every wave injected");
}

/// Runs the oracle: a journaled, snapshot-free (full-WAL) run to
/// quiescence. Returns the store directory's WAL bytes and the final
/// report.
fn oracle(base: &Path) -> (Vec<u8>, ExchangeReport) {
    let dir = base.join("oracle");
    let mut exchange =
        Exchange::with_journal(config(1), journal(&dir, 0)).expect("oracle store opens");
    drive_to_quiescence(&mut exchange);
    exchange.sync_journal().expect("oracle WAL syncs");
    let report = exchange.into_report();
    let expected: u64 = WAVE_SIZES.iter().map(|&s| s as u64).sum();
    assert_eq!(report.offers_submitted, expected);
    assert_eq!(report.swaps_settled, WAVE_SIZES.len() as u64);
    assert_eq!(report.swaps_refunded, 0);
    let wal = std::fs::read(dir.join(WAL_FILE)).expect("oracle WAL readable");
    (wal, report)
}

/// Truncates a copy of `wal` to `len` bytes in its own store directory,
/// recovers it at `threads` workers, finishes the run, and returns the
/// final report (plus replay stats via the assertion closure).
fn recover_truncated(base: &Path, wal: &[u8], len: usize, threads: usize) -> ExchangeReport {
    let dir = base.join(format!("cut{len}t{threads}"));
    std::fs::create_dir_all(&dir).expect("cut dir creatable");
    std::fs::write(dir.join(WAL_FILE), &wal[..len]).expect("truncated WAL writable");
    let recovered =
        Exchange::recover(config(threads), journal(&dir, 0)).expect("truncated store recovers");
    let mut exchange = recovered.exchange;
    drive_to_quiescence(&mut exchange);
    exchange.into_report()
}

#[test]
fn every_record_boundary_recovers_to_the_oracle_report() {
    let base = store_dir("sweep");
    let (wal, oracle_report) = oracle(&base);
    let scan = decode_frames(&wal).expect("oracle WAL decodes");
    assert!(!scan.torn, "a synced quiescent WAL has no torn tail");
    assert!(scan.frames.len() > 40, "the six-wave run logs a substantial WAL");

    // Every boundary: before the first record (genesis), after each
    // record. Thread counts rotate 1/2/8 across cut points so the sweep
    // also exercises pool-width independence.
    let boundaries: Vec<usize> =
        std::iter::once(0).chain(scan.frames.iter().map(|f| f.end)).collect();
    for (i, &cut) in boundaries.iter().enumerate() {
        let threads = [1, 2, 8][i % 3];
        let report = recover_truncated(&base, &wal, cut, threads);
        assert_eq!(report, oracle_report, "crash at byte {cut} ({threads} workers)");
    }
}

#[test]
fn a_fixed_crash_point_is_worker_count_invariant() {
    let base = store_dir("threads");
    let (wal, oracle_report) = oracle(&base);
    let scan = decode_frames(&wal).expect("oracle WAL decodes");
    let mid = scan.frames[scan.frames.len() / 2].end;
    for threads in [1, 2, 8] {
        let report = recover_truncated(&base, &wal, mid, threads);
        assert_eq!(report, oracle_report, "mid-log crash at {threads} workers");
    }
}

#[test]
fn a_torn_mid_record_tail_is_dropped_and_repaired_by_replay() {
    let base = store_dir("torn");
    let (wal, oracle_report) = oracle(&base);
    let scan = decode_frames(&wal).expect("oracle WAL decodes");
    // Cut *inside* the final frame: the tail is garbage, recovery must
    // drop it, re-run the last command, and re-log what was lost.
    let last_start = scan.frames[scan.frames.len() - 2].end;
    let cut = last_start + (scan.valid_len - last_start) / 2;
    assert!(cut > last_start && cut < scan.valid_len);

    let dir = base.join("cut-torn");
    std::fs::create_dir_all(&dir).expect("cut dir creatable");
    std::fs::write(dir.join(WAL_FILE), &wal[..cut]).expect("torn WAL writable");
    let recovered = Exchange::recover(config(2), journal(&dir, 0)).expect("torn store recovers");
    assert!(recovered.stats.torn_tail, "the mid-record cut is seen as a torn tail");
    let mut exchange = recovered.exchange;
    drive_to_quiescence(&mut exchange);
    assert_eq!(exchange.into_report(), oracle_report);

    // The repair re-appended the lost records: a second recovery of the
    // same store sees a whole log and the same state.
    let again = Exchange::recover(config(2), journal(&dir, 0)).expect("repaired store recovers");
    assert!(!again.stats.torn_tail, "replay re-logged the torn group");
    let mut exchange = again.exchange;
    drive_to_quiescence(&mut exchange);
    assert_eq!(exchange.into_report(), oracle_report);
}

#[test]
fn journaling_leaves_the_simulated_trace_untouched() {
    let base = store_dir("plain-vs-wal");
    let mut plain = Exchange::new(config(2));
    drive_to_quiescence(&mut plain);
    let (_, journaled) = oracle(&base);
    assert_eq!(plain.into_report(), journaled);
}

#[test]
fn snapshot_plus_tail_recovery_matches_the_uncrashed_run() {
    let base = store_dir("snapshot-tail");
    let dir = base.join("store");
    // Snapshot after every settled epoch: by quiescence the WAL has been
    // absorbed into a snapshot and reset.
    let mut exchange =
        Exchange::with_journal(config(1), journal(&dir, 1)).expect("journal store opens");
    drive_to_quiescence(&mut exchange);
    // Feed one more wave on top of the snapshot, so the store holds
    // snapshot + command tail, and capture the crash point.
    exchange.submit_seeded(wave_seeds(0));
    exchange.sync_journal().expect("journal syncs");
    let crash_dir = base.join("crashed");
    std::fs::create_dir_all(&crash_dir).expect("crash dir creatable");
    for entry in std::fs::read_dir(&dir).expect("store dir listable") {
        let entry = entry.expect("store entry readable");
        std::fs::copy(entry.path(), crash_dir.join(entry.file_name()))
            .expect("store file copyable");
    }
    // The uncrashed run settles the extra wave too.
    while !matches!(exchange.step().expect("pipeline advances"), StepEvent::Quiescent) {}
    let oracle_report = exchange.into_report();

    let recovered =
        Exchange::recover(config(2), journal(&crash_dir, 1)).expect("snapshot store recovers");
    assert!(recovered.stats.snapshot_seq.is_some(), "recovery loaded the snapshot");
    assert!(recovered.stats.commands_replayed >= 1, "the extra wave replays from the tail");
    let mut exchange = recovered.exchange;
    while !matches!(exchange.step().expect("pipeline advances"), StepEvent::Quiescent) {}
    assert_eq!(exchange.into_report(), oracle_report);
}

#[test]
fn cancel_and_resubmit_commands_replay_faithfully() {
    let base = store_dir("cancel-resubmit");
    let dir = base.join("store");
    let mut exchange =
        Exchange::with_journal(config(1), journal(&dir, 0)).expect("journal store opens");
    // A 3-ring plus one dust offer; the dust is cancelled and its identity
    // re-enters with new terms that complete a 2-ring against a late offer.
    let submitted = exchange.submit_seeded(wave_seeds(1));
    let mut rng = SimRng::from_seed(0xCA9CE1);
    let dust = exchange.submit_seeded(vec![PartySeed {
        seed: rng.bytes32(),
        key_height: 2,
        secret: Secret::random(&mut rng),
        gives: AssetKind::new("x".to_string()),
        wants: AssetKind::new("y".to_string()),
    }]);
    let (dust_offer, dust_address) = dust[0];
    exchange.cancel(dust_offer).expect("resting dust offer cancels");
    exchange
        .resubmit(
            dust_address,
            Secret::random(&mut rng),
            AssetKind::new("y".to_string()),
            AssetKind::new("x".to_string()),
        )
        .expect("cancelled identity resubmits");
    exchange.submit_seeded(vec![PartySeed {
        seed: rng.bytes32(),
        key_height: 2,
        secret: Secret::random(&mut rng),
        gives: AssetKind::new("x".to_string()),
        wants: AssetKind::new("y".to_string()),
    }]);
    while !matches!(exchange.step().expect("pipeline advances"), StepEvent::Quiescent) {}
    exchange.sync_journal().expect("journal syncs");
    let oracle_report = exchange.into_report();
    assert_eq!(oracle_report.offers_cancelled, 1);
    assert_eq!(oracle_report.swaps_settled, 2, "the 3-ring and the resubmitted 2-ring settle");
    assert!(!submitted.is_empty());

    // Full-log recovery replays Cancel and Resubmit heads byte-for-byte.
    let recovered = Exchange::recover(config(2), journal(&dir, 0)).expect("store recovers");
    assert_eq!(*recovered.exchange.report(), oracle_report);
    let mut exchange = recovered.exchange;
    assert!(matches!(exchange.step().expect("pipeline advances"), StepEvent::Quiescent));
}
