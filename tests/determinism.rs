//! Determinism regression: the entire pipeline — setup generation, key
//! material, contract deployment, the discrete-event run — is a pure
//! function of the master `SimRng` seed. Two runs from the same seed must
//! produce byte-identical `RunReport`s (outcomes, trigger times, trace,
//! metrics, storage), for every digraph family and under adversaries.
//!
//! This is the property every replayable experiment in `swap-bench`
//! silently depends on; a nondeterministic collection iteration order or a
//! stray `HashMap` would surface here first.

use atomic_swaps::core::runner::{RunConfig, RunReport, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::core::timing::PerChainLatency;
use atomic_swaps::core::{Behavior, Engine};
use atomic_swaps::digraph::{generators, Digraph, VertexId};
use atomic_swaps::market::LeaderStrategy;
use atomic_swaps::sim::SimRng;

fn fast_config() -> SetupConfig {
    SetupConfig {
        key_height: 4,
        leader_strategy: LeaderStrategy::MinimumExact,
        ..SetupConfig::default()
    }
}

fn run_once(digraph: Digraph, seed: u64, config: &RunConfig) -> RunReport {
    let setup = SwapSetup::generate(digraph, &fast_config(), &mut SimRng::from_seed(seed))
        .expect("strongly connected digraphs are valid swaps");
    SwapRunner::new(setup, config.clone()).run()
}

/// Renders every field of the report; two reports are "byte-identical"
/// iff these strings are.
fn fingerprint(report: &RunReport) -> String {
    format!("{report:?}")
}

fn assert_deterministic(name: &str, make: impl Fn() -> Digraph, seed: u64, config: &RunConfig) {
    let first = fingerprint(&run_once(make(), seed, config));
    let second = fingerprint(&run_once(make(), seed, config));
    assert_eq!(first, second, "family `{name}` diverged across identically-seeded runs");
}

#[test]
fn conforming_runs_are_seed_deterministic_across_families() {
    let config = RunConfig::default();
    assert_deterministic("herlihy_three_party", generators::herlihy_three_party, 2018, &config);
    assert_deterministic("cycle_5", || generators::cycle(5), 7, &config);
    assert_deterministic("complete_4", || generators::complete(4), 11, &config);
    assert_deterministic("two_leader_triangle", generators::two_leader_triangle, 23, &config);
    assert_deterministic(
        "random_strongly_connected_6",
        || generators::random_strongly_connected(6, 0.3, &mut SimRng::from_seed(99)),
        41,
        &config,
    );
}

#[test]
fn adversarial_runs_are_seed_deterministic() {
    let mut config = RunConfig::default();
    config.behaviors.insert(VertexId::new(1), Behavior::Halt { at_round: 3 });
    config.behaviors.insert(VertexId::new(2), Behavior::WithholdSecret);
    assert_deterministic("cycle_4_adversarial", || generators::cycle(4), 13, &config);
    assert_deterministic("complete_4_adversarial", || generators::complete(4), 17, &config);
    assert_deterministic("flower_adversarial", || generators::flower(3, 2), 19, &config);
}

fn run_once_per_chain_latency(digraph: Digraph, seed: u64, config: &RunConfig) -> RunReport {
    // The same master seed drives setup generation *and* the latency draws,
    // so the whole run — including per-chain publish/confirm delays — is a
    // pure function of the seed.
    let rng = SimRng::from_seed(seed);
    let setup = SwapSetup::generate(digraph, &fast_config(), &mut rng.clone())
        .expect("strongly connected digraphs are valid swaps");
    let timing = PerChainLatency::sample(&setup, &rng);
    Engine::new(setup, config.clone(), timing).run()
}

fn assert_per_chain_latency_deterministic(
    name: &str,
    make: impl Fn() -> Digraph,
    seed: u64,
    config: &RunConfig,
) {
    let first = fingerprint(&run_once_per_chain_latency(make(), seed, config));
    let second = fingerprint(&run_once_per_chain_latency(make(), seed, config));
    assert_eq!(
        first, second,
        "family `{name}` diverged across identically-seeded per-chain-latency runs"
    );
}

#[test]
fn per_chain_latency_runs_are_seed_deterministic() {
    let config = RunConfig::default();
    assert_per_chain_latency_deterministic(
        "herlihy_three_party_latency",
        generators::herlihy_three_party,
        2018,
        &config,
    );
    assert_per_chain_latency_deterministic("cycle_5_latency", || generators::cycle(5), 7, &config);
    assert_per_chain_latency_deterministic(
        "complete_4_latency",
        || generators::complete(4),
        11,
        &config,
    );
    let mut adversarial = RunConfig::default();
    adversarial.behaviors.insert(VertexId::new(1), Behavior::Halt { at_round: 3 });
    adversarial.behaviors.insert(VertexId::new(2), Behavior::WithholdSecret);
    assert_per_chain_latency_deterministic(
        "flower_latency_adversarial",
        || generators::flower(3, 2),
        19,
        &adversarial,
    );
}

#[test]
fn per_chain_latency_differs_from_lockstep_but_agrees_on_outcomes() {
    // Anti-vacuity: the latency model must actually perturb the timeline
    // (otherwise the suite above only re-tests lockstep), while protocol
    // outcomes stay those of the paper.
    let lockstep = run_once(generators::cycle(5), 7, &RunConfig::default());
    let latency = run_once_per_chain_latency(generators::cycle(5), 7, &RunConfig::default());
    assert_eq!(lockstep.outcomes, latency.outcomes);
    assert_eq!(lockstep.metrics.unlock_calls, latency.metrics.unlock_calls);
    assert_ne!(
        lockstep.triggered_at, latency.triggered_at,
        "per-chain delays should move trigger instants off the lockstep grid"
    );
}

#[test]
fn different_seeds_produce_different_key_material() {
    // Guard against the opposite failure: seed-independent generation
    // would make the tests above vacuous. The run report itself is
    // symbolic (vertex/arc names and times), so the seed must surface in
    // the setup: key material and leader hashlocks have to differ.
    let gen = |seed| {
        SwapSetup::generate(generators::cycle(4), &fast_config(), &mut SimRng::from_seed(seed))
            .expect("valid swap")
    };
    let (a, b) = (gen(1), gen(2));
    assert_ne!(a.spec.hashlocks, b.spec.hashlocks, "hashlocks should depend on the seed");
    assert_ne!(
        format!("{:?}", a.keypairs[0].public_key()),
        format!("{:?}", b.keypairs[0].public_key()),
        "signing keys should depend on the seed"
    );
    // And the same seed reproduces the same setup, keys included.
    assert_eq!(a.spec.hashlocks, gen(1).spec.hashlocks);
}
