//! Cross-engine equivalence: the event-driven `Lockstep` engine must
//! reproduce the pre-refactor lockstep runner's `RunReport` byte-for-byte.
//!
//! The files under `tests/golden/` were recorded by running the seed
//! runner (the monolithic poll-everything round loop this engine replaced)
//! on the eight digraph/adversary combos of the determinism suite, with
//! the same seeds used here. Every seed-era observable — outcomes, arc
//! triggers and their instants, completion, settlement, metrics, storage
//! accounting, and the full trace — is rendered into the fingerprint, so
//! any drift in event ordering, transaction timing, trace wording, or
//! byte accounting fails loudly.
//!
//! (`RunMetrics::direct_transfers` postdates the recording, so it is not
//! part of the fingerprint; it is asserted to be zero separately — no
//! combo here uses coalition behavior.)

use atomic_swaps::core::runner::{RunConfig, RunReport, SnapshotMode, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::core::Behavior;
use atomic_swaps::digraph::{generators, Digraph, VertexId};
use atomic_swaps::market::LeaderStrategy;
use atomic_swaps::sim::SimRng;

fn fast_config() -> SetupConfig {
    SetupConfig {
        key_height: 4,
        leader_strategy: LeaderStrategy::MinimumExact,
        ..SetupConfig::default()
    }
}

/// Renders every seed-era field of the report in the exact format the
/// golden files were recorded with.
fn fingerprint(report: &RunReport) -> String {
    let mut s = String::new();
    s.push_str(&format!("outcomes: {:?}\n", report.outcomes));
    s.push_str(&format!("arc_triggered: {:?}\n", report.arc_triggered));
    s.push_str(&format!("triggered_at: {:?}\n", report.triggered_at));
    s.push_str(&format!("completion: {:?}\n", report.completion));
    s.push_str(&format!("settled: {:?}\n", report.settled));
    s.push_str(&format!("conforming: {:?}\n", report.conforming));
    s.push_str(&format!("abandoned: {:?}\n", report.abandoned));
    s.push_str(&format!("rounds: {}\n", report.metrics.rounds));
    s.push_str(&format!("contracts_published: {}\n", report.metrics.contracts_published));
    s.push_str(&format!("unlock_calls: {}\n", report.metrics.unlock_calls));
    s.push_str(&format!("unlock_bytes: {}\n", report.metrics.unlock_bytes));
    s.push_str(&format!("claim_calls: {}\n", report.metrics.claim_calls));
    s.push_str(&format!("refund_calls: {}\n", report.metrics.refund_calls));
    s.push_str(&format!("rejected_calls: {}\n", report.metrics.rejected_calls));
    s.push_str(&format!("announce_bytes: {}\n", report.metrics.announce_bytes));
    s.push_str(&format!("storage: {:?}\n", report.storage));
    for e in report.trace.entries() {
        s.push_str(&format!("trace: {:?}\n", e));
    }
    s
}

fn adversarial_config() -> RunConfig {
    let mut config = RunConfig::default();
    config.behaviors.insert(VertexId::new(1), Behavior::Halt { at_round: 3 });
    config.behaviors.insert(VertexId::new(2), Behavior::WithholdSecret);
    config
}

/// The eight determinism-suite combos, with the recorded seed-runner
/// fingerprints they must reproduce.
fn combos() -> Vec<(&'static str, Digraph, u64, RunConfig, &'static str)> {
    vec![
        (
            "herlihy_three_party",
            generators::herlihy_three_party(),
            2018,
            RunConfig::default(),
            include_str!("golden/herlihy_three_party.txt"),
        ),
        (
            "cycle_5",
            generators::cycle(5),
            7,
            RunConfig::default(),
            include_str!("golden/cycle_5.txt"),
        ),
        (
            "complete_4",
            generators::complete(4),
            11,
            RunConfig::default(),
            include_str!("golden/complete_4.txt"),
        ),
        (
            "two_leader_triangle",
            generators::two_leader_triangle(),
            23,
            RunConfig::default(),
            include_str!("golden/two_leader_triangle.txt"),
        ),
        (
            "random_strongly_connected_6",
            generators::random_strongly_connected(6, 0.3, &mut SimRng::from_seed(99)),
            41,
            RunConfig::default(),
            include_str!("golden/random_strongly_connected_6.txt"),
        ),
        (
            "cycle_4_adversarial",
            generators::cycle(4),
            13,
            adversarial_config(),
            include_str!("golden/cycle_4_adversarial.txt"),
        ),
        (
            "complete_4_adversarial",
            generators::complete(4),
            17,
            adversarial_config(),
            include_str!("golden/complete_4_adversarial.txt"),
        ),
        (
            "flower_3_2_adversarial",
            generators::flower(3, 2),
            19,
            adversarial_config(),
            include_str!("golden/flower_3_2_adversarial.txt"),
        ),
    ]
}

fn run_combo(digraph: Digraph, seed: u64, config: RunConfig) -> RunReport {
    let setup = SwapSetup::generate(digraph, &fast_config(), &mut SimRng::from_seed(seed))
        .expect("strongly connected digraphs are valid swaps");
    SwapRunner::new(setup, config).run()
}

#[test]
fn lockstep_engine_reproduces_seed_runner_byte_for_byte() {
    for (name, digraph, seed, config, golden) in combos() {
        let report = run_combo(digraph, seed, config);
        assert_eq!(
            fingerprint(&report),
            golden,
            "combo `{name}` diverged from the recorded seed-runner report"
        );
        assert_eq!(report.metrics.direct_transfers, 0, "combo `{name}`: no coalition here");
    }
}

#[test]
fn full_rebuild_snapshot_mode_matches_goldens_too() {
    // The classic per-boundary full rebuild and the snapshot-delta hot path
    // must be observationally identical — both against each other and
    // against the recorded seed behavior.
    for (name, digraph, seed, mut config, golden) in combos() {
        config.snapshot_mode = SnapshotMode::FullRebuild;
        let report = run_combo(digraph, seed, config);
        assert_eq!(
            fingerprint(&report),
            golden,
            "combo `{name}` (full rebuild) diverged from the recorded seed-runner report"
        );
    }
}
