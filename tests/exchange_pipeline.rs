//! The exchange pipeline's two pinned guarantees:
//!
//! 1. **Equivalence** — a single cleared swap executed through the
//!    [`Exchange`] orchestrator produces a [`RunReport`] byte-identical
//!    (via `Debug`) to driving the [`Engine`] directly on the same
//!    provisioned setup. The pipeline adds orchestration, never semantics.
//! 2. **Determinism** — the same seed and the same offer book yield an
//!    identical [`ExchangeReport`] for 1, 2, and 8 worker threads. Sharding
//!    changes wall-clock only.
//!
//! These goldens drive the staged pipeline to quiescence
//! ([`Exchange::drive_until_quiescent`]): with the default zero stage
//! costs a single-epoch workload through the staged driver is
//! byte-identical to the historical blocking batch path, so the goldens
//! pin the same bytes the retired `run_epoch` shim once did. Stage-level
//! and multi-epoch coverage lives in `tests/pipeline_stages.rs`; worker
//! pool and multi-slot execution coverage in `tests/exchange_pool.rs`.

use atomic_swaps::core::exchange::{Exchange, ExchangeConfig, ExchangeParty, ProtocolPolicy};
use atomic_swaps::core::instance::SwapInstance;
use atomic_swaps::core::runner::RunConfig;
use atomic_swaps::core::{Engine, Lockstep, ProtocolKind};
use atomic_swaps::market::{AssetKind, ClearingService, OfferStatus};
use atomic_swaps::sim::{Delta, SimRng, SimTime};

/// A deterministic book of `cycles` disjoint rings of the given sizes.
fn ring_book(sizes: &[usize], seed: u64) -> Vec<ExchangeParty> {
    let mut rng = SimRng::from_seed(seed);
    let mut parties = Vec::new();
    for (c, &len) in sizes.iter().enumerate() {
        for p in 0..len {
            parties.push(ExchangeParty::generate(
                &mut rng,
                4,
                AssetKind::new(format!("r{c}k{p}")),
                AssetKind::new(format!("r{c}k{}", (p + 1) % len)),
            ));
        }
    }
    parties
}

#[test]
fn single_cleared_swap_via_exchange_equals_engine_direct() {
    let parties = ring_book(&[3], 0xE9);
    let delta = Delta::from_ticks(10);

    // Path A: the exchange pipeline.
    let mut exchange = Exchange::new(ExchangeConfig { delta, ..Default::default() });
    for p in &parties {
        exchange.submit(p.clone());
    }
    let mut executed = exchange.drive_until_quiescent().expect("epoch clears");
    assert_eq!(executed.len(), 1);
    let via_exchange = executed.remove(0);

    // Path B: the same clearing, provisioned by hand and driven through
    // the engine directly. The clearing service is deterministic, so both
    // paths see the same ClearedSwap.
    let mut service = ClearingService::new();
    for p in &parties {
        service.submit(p.offer());
    }
    let cleared = service.clear(delta, SimTime::ZERO).expect("clears").remove(0);
    assert_eq!(cleared.id, via_exchange.id);
    let keypairs =
        cleared.offer_of_vertex.iter().map(|o| parties[o.raw() as usize].keypair.clone()).collect();
    let secrets =
        cleared.offer_of_vertex.iter().map(|o| parties[o.raw() as usize].secret).collect();
    let instance = SwapInstance::from_cleared(
        &cleared,
        keypairs,
        secrets,
        SimTime::ZERO,
        RunConfig::default(),
    );
    let direct = Engine::from_instance(instance, Lockstep::new(delta)).run();

    // Byte-identical reports: outcomes, trigger times, traces, metrics,
    // storage — everything.
    assert_eq!(format!("{direct:?}"), format!("{:?}", via_exchange.report));
    assert!(direct.all_deal());
}

#[test]
fn exchange_report_invariant_under_worker_threads() {
    let run = |threads: usize| {
        let mut exchange = Exchange::new(ExchangeConfig { threads, ..Default::default() });
        for p in ring_book(&[2, 3, 2, 4, 3, 2, 5, 2], 0xD1) {
            exchange.submit(p);
        }
        let executed = exchange.drive_until_quiescent().expect("epoch clears");
        assert_eq!(executed.len(), 8, "threads={threads}");
        // Per-swap reports are also identical, not just the aggregate.
        let per_swap: Vec<String> =
            executed.iter().map(|s| format!("{}:{:?}", s.id, s.report)).collect();
        (format!("{:?}", exchange.report()), per_swap)
    };
    let (baseline_report, baseline_swaps) = run(1);
    for threads in [2, 8] {
        let (report, swaps) = run(threads);
        assert_eq!(baseline_report, report, "aggregate report differs at {threads} threads");
        assert_eq!(baseline_swaps, swaps, "per-swap reports differ at {threads} threads");
    }
}

#[test]
fn pipeline_resolves_offer_lifecycle_end_to_end() {
    let mut exchange = Exchange::new(ExchangeConfig { threads: 4, ..Default::default() });
    let ids: Vec<_> = ring_book(&[3, 2], 0xF2).into_iter().map(|p| exchange.submit(p)).collect();
    // A straggler with no counterparty, and a cancelled offer.
    let mut rng = SimRng::from_seed(0xF3);
    let straggler = exchange.submit(ExchangeParty::generate(
        &mut rng,
        4,
        AssetKind::new("straggler"),
        AssetKind::new("r0k0"),
    ));
    let cancelled = exchange.submit(ExchangeParty::generate(
        &mut rng,
        4,
        AssetKind::new("x"),
        AssetKind::new("y"),
    ));
    exchange.cancel(cancelled).expect("open offer cancels");

    let executed = exchange.drive_until_quiescent().expect("epoch clears");
    assert_eq!(executed.len(), 2);
    assert!(executed.iter().all(|s| s.report.all_deal() && s.report.settled));

    for id in ids {
        assert_eq!(exchange.service().status(id), Some(OfferStatus::Settled));
    }
    assert_eq!(exchange.service().status(straggler), Some(OfferStatus::Open));
    assert_eq!(exchange.service().status(cancelled), Some(OfferStatus::Cancelled));

    let report = exchange.report();
    assert_eq!(report.epochs, 1);
    assert_eq!(report.swaps_cleared, 2);
    assert_eq!(report.swaps_settled, 2);
    assert_eq!(report.swaps_refunded, 0);
    assert_eq!(report.offers_cancelled, 1);
    // 3 + 2 arcs, one chain each, merged into the global ledger.
    assert_eq!(exchange.ledger().len(), 5);
    assert!(exchange.ledger().verify_integrity());
}

/// The protocol-selection acceptance pin: a single-leader-feasible cleared
/// cycle executed via the `Exchange` provably runs on `AnyContract::Htlc`
/// contracts (per-swap protocol tag plus the ledger's actual contract
/// flavors), with strictly lower storage than the same cycle forced
/// through the general hashkey protocol.
#[test]
fn auto_selection_runs_cleared_cycles_on_htlcs_and_saves_storage() {
    let parties = ring_book(&[4], 0xAB);
    let run = |policy: ProtocolPolicy| {
        let mut exchange = Exchange::new(ExchangeConfig { protocol: policy, ..Default::default() });
        for p in &parties {
            exchange.submit(p.clone());
        }
        let executed = exchange.drive_until_quiescent().expect("epoch clears");
        assert_eq!(executed.len(), 1);
        assert!(executed[0].report.all_deal() && executed[0].report.settled);
        let mut htlc_contracts = 0usize;
        let mut swap_contracts = 0usize;
        for (_, chain) in exchange.ledger().iter() {
            for (_, contract) in chain.contracts() {
                if contract.as_htlc().is_some() {
                    htlc_contracts += 1;
                } else {
                    swap_contracts += 1;
                }
            }
        }
        (exchange.into_report(), htlc_contracts, swap_contracts)
    };

    let (auto_report, auto_htlc, auto_swap) = run(ProtocolPolicy::Auto);
    assert_eq!(auto_report.swaps.len(), 1);
    assert_eq!(auto_report.swaps[0].protocol, ProtocolKind::Htlc, "cycles auto-select HTLCs");
    assert_eq!((auto_htlc, auto_swap), (4, 0), "every arc's contract is an HTLC");

    let (forced_report, forced_htlc, forced_swap) = run(ProtocolPolicy::ForceHashkey);
    assert_eq!(forced_report.swaps[0].protocol, ProtocolKind::Hashkey);
    assert_eq!((forced_htlc, forced_swap), (0, 4), "forcing keeps the general contract");

    // §4.6's storage and message-size claims, measured at exchange scale.
    assert!(
        auto_report.storage.total_bytes() < forced_report.storage.total_bytes(),
        "htlc {} vs hashkey {}",
        auto_report.storage.total_bytes(),
        forced_report.storage.total_bytes()
    );
    assert!(
        auto_report.swaps[0].metrics.unlock_bytes < forced_report.swaps[0].metrics.unlock_bytes
    );
}

/// Mixed books: the exchange applies the per-cycle choice independently —
/// every simple cycle is single-leader feasible, so an auto epoch tags all
/// of them `htlc` while a forced epoch tags all `hashkey`, and both settle.
#[test]
fn protocol_choice_is_recorded_per_swap() {
    for (policy, expected) in [
        (ProtocolPolicy::Auto, ProtocolKind::Htlc),
        (ProtocolPolicy::ForceHashkey, ProtocolKind::Hashkey),
    ] {
        let mut exchange =
            Exchange::new(ExchangeConfig { protocol: policy, threads: 2, ..Default::default() });
        for p in ring_book(&[3, 5, 2], 0xCC) {
            exchange.submit(p);
        }
        let executed = exchange.drive_until_quiescent().expect("epoch clears");
        assert_eq!(executed.len(), 3);
        let report = exchange.report();
        assert_eq!(report.swaps_settled, 3);
        assert!(report.swaps.iter().all(|s| s.protocol == expected), "policy {policy:?}");
    }
}
