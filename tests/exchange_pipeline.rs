//! The exchange pipeline's two pinned guarantees:
//!
//! 1. **Equivalence** — a single cleared swap executed through the
//!    [`Exchange`] orchestrator produces a [`RunReport`] byte-identical
//!    (via `Debug`) to driving the [`Engine`] directly on the same
//!    provisioned setup. The pipeline adds orchestration, never semantics.
//! 2. **Determinism** — the same seed and the same offer book yield an
//!    identical [`ExchangeReport`] for 1, 2, and 8 worker threads. Sharding
//!    changes wall-clock only.

use atomic_swaps::core::exchange::{Exchange, ExchangeConfig, ExchangeParty};
use atomic_swaps::core::instance::SwapInstance;
use atomic_swaps::core::runner::RunConfig;
use atomic_swaps::core::{Engine, Lockstep};
use atomic_swaps::market::{AssetKind, ClearingService, OfferStatus};
use atomic_swaps::sim::{Delta, SimRng, SimTime};

/// A deterministic book of `cycles` disjoint rings of the given sizes.
fn ring_book(sizes: &[usize], seed: u64) -> Vec<ExchangeParty> {
    let mut rng = SimRng::from_seed(seed);
    let mut parties = Vec::new();
    for (c, &len) in sizes.iter().enumerate() {
        for p in 0..len {
            parties.push(ExchangeParty::generate(
                &mut rng,
                4,
                AssetKind::new(format!("r{c}k{p}")),
                AssetKind::new(format!("r{c}k{}", (p + 1) % len)),
            ));
        }
    }
    parties
}

#[test]
fn single_cleared_swap_via_exchange_equals_engine_direct() {
    let parties = ring_book(&[3], 0xE9);
    let delta = Delta::from_ticks(10);

    // Path A: the exchange pipeline.
    let mut exchange = Exchange::new(ExchangeConfig { delta, ..Default::default() });
    for p in &parties {
        exchange.submit(p.clone());
    }
    let mut executed = exchange.run_epoch().expect("epoch clears");
    assert_eq!(executed.len(), 1);
    let via_exchange = executed.remove(0);

    // Path B: the same clearing, provisioned by hand and driven through
    // the engine directly. The clearing service is deterministic, so both
    // paths see the same ClearedSwap.
    let mut service = ClearingService::new();
    for p in &parties {
        service.submit(p.offer());
    }
    let cleared = service.clear(delta, SimTime::ZERO).expect("clears").remove(0);
    assert_eq!(cleared.id, via_exchange.id);
    let keypairs =
        cleared.offer_of_vertex.iter().map(|o| parties[o.raw() as usize].keypair.clone()).collect();
    let secrets =
        cleared.offer_of_vertex.iter().map(|o| parties[o.raw() as usize].secret).collect();
    let instance = SwapInstance::from_cleared(
        &cleared,
        keypairs,
        secrets,
        SimTime::ZERO,
        RunConfig::default(),
    );
    let direct = Engine::from_instance(instance, Lockstep::new(delta)).run();

    // Byte-identical reports: outcomes, trigger times, traces, metrics,
    // storage — everything.
    assert_eq!(format!("{direct:?}"), format!("{:?}", via_exchange.report));
    assert!(direct.all_deal());
}

#[test]
fn exchange_report_invariant_under_worker_threads() {
    let run = |threads: usize| {
        let mut exchange = Exchange::new(ExchangeConfig { threads, ..Default::default() });
        for p in ring_book(&[2, 3, 2, 4, 3, 2, 5, 2], 0xD1) {
            exchange.submit(p);
        }
        let executed = exchange.run_epoch().expect("epoch clears");
        assert_eq!(executed.len(), 8, "threads={threads}");
        // Per-swap reports are also identical, not just the aggregate.
        let per_swap: Vec<String> =
            executed.iter().map(|s| format!("{}:{:?}", s.id, s.report)).collect();
        (format!("{:?}", exchange.report()), per_swap)
    };
    let (baseline_report, baseline_swaps) = run(1);
    for threads in [2, 8] {
        let (report, swaps) = run(threads);
        assert_eq!(baseline_report, report, "aggregate report differs at {threads} threads");
        assert_eq!(baseline_swaps, swaps, "per-swap reports differ at {threads} threads");
    }
}

#[test]
fn pipeline_resolves_offer_lifecycle_end_to_end() {
    let mut exchange = Exchange::new(ExchangeConfig { threads: 4, ..Default::default() });
    let ids: Vec<_> = ring_book(&[3, 2], 0xF2).into_iter().map(|p| exchange.submit(p)).collect();
    // A straggler with no counterparty, and a cancelled offer.
    let mut rng = SimRng::from_seed(0xF3);
    let straggler = exchange.submit(ExchangeParty::generate(
        &mut rng,
        4,
        AssetKind::new("straggler"),
        AssetKind::new("r0k0"),
    ));
    let cancelled = exchange.submit(ExchangeParty::generate(
        &mut rng,
        4,
        AssetKind::new("x"),
        AssetKind::new("y"),
    ));
    exchange.cancel(cancelled).expect("open offer cancels");

    let executed = exchange.run_epoch().expect("epoch clears");
    assert_eq!(executed.len(), 2);
    assert!(executed.iter().all(|s| s.report.all_deal() && s.report.settled));

    for id in ids {
        assert_eq!(exchange.service().status(id), Some(OfferStatus::Settled));
    }
    assert_eq!(exchange.service().status(straggler), Some(OfferStatus::Open));
    assert_eq!(exchange.service().status(cancelled), Some(OfferStatus::Cancelled));

    let report = exchange.report();
    assert_eq!(report.epochs, 1);
    assert_eq!(report.swaps_cleared, 2);
    assert_eq!(report.swaps_settled, 2);
    assert_eq!(report.swaps_refunded, 0);
    assert_eq!(report.offers_cancelled, 1);
    // 3 + 2 arcs, one chain each, merged into the global ledger.
    assert_eq!(exchange.ledger().len(), 5);
    assert!(exchange.ledger().verify_integrity());
}
