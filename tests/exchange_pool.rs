//! The worker-pool execution tier's pinned guarantees:
//!
//! 1. **Determinism** — `ExchangeReport` is byte-invariant (via `Debug`)
//!    across 1/2/8/16 pool workers, on a skewed multi-wave book whose
//!    mixed cycle lengths force uneven per-swap costs (and therefore work
//!    stealing), under both protocol policies. Host workers change
//!    wall-clock only; the simulated trace — wall ticks, stage
//!    attribution, occupancy, per-swap reports — is identical.
//! 2. **Multi-slot execution** — with `executing_slots > 1`, two epochs
//!    are observably resident in `Executing` at once, `executing_peak`
//!    records it, stage ticks still sum exactly to `wall_ticks`, and the
//!    overlap strictly shortens the simulated wall against a single-slot
//!    run of the same book.
//! 3. **Panic isolation** — a swap whose engine panics on its worker fails
//!    alone (`ExchangeError::WorkerPanicked`, offers refunded); sibling
//!    swaps of the same epoch settle normally and the pipeline keeps
//!    driving.

use std::collections::BTreeMap;

use atomic_swaps::core::exchange::{
    EpochStage, Exchange, ExchangeConfig, ExchangeError, ExchangeParty, ExchangeReport,
    ProtocolPolicy, StageCosts, StepEvent,
};
use atomic_swaps::core::runner::RunConfig;
use atomic_swaps::core::{Action, Behavior};
use atomic_swaps::digraph::{ArcId, VertexId};
use atomic_swaps::market::{AssetKind, OfferStatus};
use atomic_swaps::sim::SimRng;

/// A deterministic book of disjoint rings of the given sizes, drawn from
/// `rng`. Ring `c`'s kinds are namespaced by `tag` so successive waves
/// never trade with each other.
fn ring_book(sizes: &[usize], tag: &str, rng: &mut SimRng) -> Vec<ExchangeParty> {
    let mut parties = Vec::new();
    for (c, &len) in sizes.iter().enumerate() {
        for p in 0..len {
            parties.push(ExchangeParty::generate(
                rng,
                4,
                AssetKind::new(format!("{tag}r{c}k{p}")),
                AssetKind::new(format!("{tag}r{c}k{}", (p + 1) % len)),
            ));
        }
    }
    parties
}

/// E18-style stage costs: cheap enough that execution dominates, nonzero
/// so clearing/provisioning/settling are visible in the attribution.
fn costs() -> StageCosts {
    StageCosts {
        clearing_base: 10,
        clearing_per_examined: 1,
        clearing_per_cycle: 1,
        provisioning_base: 5,
        provisioning_per_party: 1,
        settling_base: 5,
        settling_per_swap: 1,
    }
}

/// Feeds `waves` of offers into a fresh exchange, stepping a few times
/// between waves so each wave clears as its own epoch (the book must be
/// consumed by clearing `k` before wave `k+1` lands in it), then drives to
/// quiescence. Every step decision is simulated-time-based, so the drive
/// is deterministic whatever the host pool does.
fn drive_waves(config: ExchangeConfig, waves: &[Vec<ExchangeParty>]) -> (ExchangeReport, usize) {
    let mut exchange = Exchange::new(config);
    let mut peak_observed = 0usize;
    for wave in waves {
        for p in wave {
            exchange.submit(p.clone());
        }
        // Admission + clearing completion: after these the book is
        // consumed and the clearing slot is free for the next wave.
        for _ in 0..2 {
            exchange.step().expect("pipeline steps");
            let executing =
                exchange.stages().iter().filter(|(_, s)| *s == EpochStage::Executing).count();
            peak_observed = peak_observed.max(executing);
        }
    }
    loop {
        match exchange.step().expect("pipeline steps") {
            StepEvent::Quiescent => break,
            _ => {
                let executing =
                    exchange.stages().iter().filter(|(_, s)| *s == EpochStage::Executing).count();
                peak_observed = peak_observed.max(executing);
            }
        }
    }
    (exchange.into_report(), peak_observed)
}

/// Three waves of mixed cycle lengths: per-swap runs differ by several Δ
/// rounds, so worker queues are skewed and idle workers must steal.
fn skewed_waves(seed: u64) -> Vec<Vec<ExchangeParty>> {
    let mut rng = SimRng::from_seed(seed);
    vec![
        ring_book(&[2, 5, 3], "a", &mut rng),
        ring_book(&[7, 2], "b", &mut rng),
        ring_book(&[4, 2, 3], "c", &mut rng),
    ]
}

#[test]
fn report_byte_invariant_across_pool_workers() {
    for policy in [ProtocolPolicy::Auto, ProtocolPolicy::ForceHashkey] {
        let run = |threads: usize| {
            let config = ExchangeConfig {
                threads,
                executing_slots: 3,
                stage_costs: costs(),
                protocol: policy,
                ..Default::default()
            };
            let (report, _) = drive_waves(config, &skewed_waves(0x9E));
            assert_eq!(report.swaps_settled, 8, "threads={threads} policy={policy:?}");
            assert_eq!(report.stage_ticks.total(), report.wall_ticks);
            format!("{report:?}")
        };
        let baseline = run(1);
        for threads in [2, 8, 16] {
            assert_eq!(baseline, run(threads), "threads={threads} policy={policy:?}");
        }
    }
}

#[test]
fn multi_slot_executing_overlaps_epochs_and_attribution_still_sums() {
    let config = |slots: usize| ExchangeConfig {
        threads: 2,
        executing_slots: slots,
        stage_costs: costs(),
        ..Default::default()
    };
    let (wide, peak_observed) = drive_waves(config(2), &skewed_waves(0x5107));
    // Two epochs were *observably* resident in Executing at once — both
    // through the public stage view and through the report's peak.
    assert!(peak_observed >= 2, "observed executing occupancy {peak_observed}");
    assert!(wide.executing_peak >= 2, "report peak {}", wide.executing_peak);
    // Attribution stays exact while epochs overlap.
    assert_eq!(wide.stage_ticks.total(), wide.wall_ticks);
    // Residency integral: with overlap, epoch-ticks spent in Executing
    // exceed the frontier ticks attributed to it.
    assert!(wide.executing_resident_ticks > wide.stage_ticks.executing);

    // The same book through a single execution slot: same swaps settle,
    // strictly longer simulated wall (executions serialize).
    let (narrow, _) = drive_waves(config(1), &skewed_waves(0x5107));
    assert_eq!(narrow.executing_peak, 1);
    assert_eq!(narrow.stage_ticks.total(), narrow.wall_ticks);
    assert_eq!(narrow.swaps_settled, wide.swaps_settled);
    assert_eq!(narrow.swaps.len(), wide.swaps.len());
    assert!(
        wide.wall_ticks < narrow.wall_ticks,
        "2 slots {} vs 1 slot {}",
        wide.wall_ticks,
        narrow.wall_ticks
    );
}

#[test]
fn panicked_swap_fails_alone_and_siblings_settle() {
    // Vertex 3 exists only in the 4-cycle, and its script claims an arc
    // far out of the swap's range — the engine panics on the worker
    // mid-run. The 3-cycle shares the epoch and must be unharmed.
    let poison = Behavior::Scripted { actions: vec![(0, Action::Claim { arc: ArcId::new(77) })] };
    let mut behaviors = BTreeMap::new();
    behaviors.insert(VertexId::new(3), poison);
    let mut rng = SimRng::from_seed(0xBAD);
    let mut exchange = Exchange::new(ExchangeConfig {
        threads: 2,
        run: RunConfig { behaviors, ..Default::default() },
        ..Default::default()
    });
    let parties = ring_book(&[4, 3], "p", &mut rng);
    let ids: Vec<_> = parties.into_iter().map(|p| exchange.submit(p)).collect();

    let err = exchange.drive_until_quiescent().expect_err("the 4-cycle's engine panics");
    assert!(err.executed.is_empty(), "the panic resolves before anything settles");
    let ExchangeError::WorkerPanicked(swap) = err.error else {
        panic!("expected WorkerPanicked, got {:?}", err.error)
    };

    // The drive resumes: the surviving 3-cycle settles normally.
    let executed = exchange.drive_until_quiescent().expect("the survivor settles");
    assert_eq!(executed.len(), 1);
    assert!(executed[0].report.all_deal());

    let report = exchange.report();
    assert_eq!(report.swaps_cleared, 2);
    assert_eq!(report.swaps_settled, 1);
    assert_eq!(report.swaps_refunded, 1, "only the panicked swap refunds");
    assert_eq!(report.swaps.len(), 1, "the panicked swap has no run to summarize");
    assert_ne!(report.swaps[0].swap, swap, "the settled summary is the survivor's");
    assert_eq!(report.stage_ticks.total(), report.wall_ticks);

    // The 4-cycle's offers refunded; the 3-cycle's settled. Only the
    // 3-cycle's chains reached the ledger.
    for (i, id) in ids.iter().enumerate() {
        let expected = if i < 4 { OfferStatus::Refunded } else { OfferStatus::Settled };
        assert_eq!(exchange.service().status(*id), Some(expected), "offer {i}");
    }
    assert_eq!(exchange.ledger().len(), 3);
    assert!(exchange.ledger().verify_integrity());
}
