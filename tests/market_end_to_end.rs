//! End-to-end: offers in, atomic settlement out — the cleared spec itself
//! (with the parties' real keys and hashlocks) drives the protocol.

use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::SwapSetup;
use atomic_swaps::crypto::{MssKeypair, Secret};
use atomic_swaps::market::{verify_cleared_swap, AssetKind, ClearingService, Offer};
use atomic_swaps::sim::{Delta, SimRng, SimTime};

struct TestParty {
    keypair: MssKeypair,
    secret: Secret,
    offer: Offer,
}

fn party(seed: u8, gives: &str, wants: &str) -> TestParty {
    let keypair = MssKeypair::from_seed_with_height([seed; 32], 4);
    let secret = Secret::from_bytes([seed ^ 0x5A; 32]);
    let offer = Offer {
        key: keypair.public_key(),
        hashlock: secret.hashlock(),
        gives: AssetKind::new(gives),
        wants: AssetKind::new(wants),
    };
    TestParty { keypair, secret, offer }
}

#[test]
fn offers_to_settlement_with_cleared_spec() {
    // A 4-cycle of offers.
    let parties = vec![
        party(1, "usd", "jpy"),
        party(2, "eur", "usd"),
        party(3, "gbp", "eur"),
        party(4, "jpy", "gbp"),
    ];
    let mut service = ClearingService::new();
    for p in &parties {
        service.submit(p.offer.clone());
    }
    let delta = Delta::from_ticks(10);
    let mut cleared = service.clear(delta, SimTime::ZERO).expect("clears");
    assert_eq!(cleared.len(), 1);
    let cleared = cleared.remove(0);
    assert_eq!(cleared.spec.digraph.vertex_count(), 4);

    // Every party verifies its slot against its own offer.
    for (pos, oid) in cleared.offer_of_vertex.iter().enumerate() {
        let me = &parties[oid.raw() as usize];
        verify_cleared_swap(
            &cleared,
            atomic_swaps::digraph::VertexId::new(pos as u32),
            &me.offer,
            SimTime::ZERO,
        )
        .expect("honest clearing must verify");
    }

    // Run the protocol under the *cleared spec itself*: keypairs and
    // secrets are the parties' own, ordered by the cleared vertex layout.
    let keypairs: Vec<MssKeypair> = cleared
        .offer_of_vertex
        .iter()
        .map(|oid| parties[oid.raw() as usize].keypair.clone())
        .collect();
    let secrets: Vec<Secret> =
        cleared.offer_of_vertex.iter().map(|oid| parties[oid.raw() as usize].secret).collect();
    let setup = SwapSetup::from_parts(cleared.spec.clone(), keypairs, secrets, SimTime::ZERO);
    let report = SwapRunner::new(setup, RunConfig::default()).run();
    assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
    assert!(report.settled);
    // |A|·|L| hashkey unlocks, one secret around the 4-cycle.
    assert_eq!(report.metrics.unlock_calls, 4);
}

#[test]
fn tampered_clearing_is_caught_before_anyone_escrows() {
    let parties = vec![party(1, "a", "b"), party(2, "b", "a")];
    let mut service = ClearingService::new();
    for p in &parties {
        service.submit(p.offer.clone());
    }
    let delta = Delta::from_ticks(10);
    let mut cleared = service.clear(delta, SimTime::ZERO).expect("clears");
    let mut swap = cleared.remove(0);
    // The service swaps in its own hashlock for the leader's.
    let evil = Secret::from_bytes([0xEE; 32]);
    swap.spec.hashlocks[0] = evil.hashlock();
    let leader = swap.spec.leaders[0];
    let victim = &parties[swap.offer_of_vertex[leader.index()].raw() as usize];
    let err = verify_cleared_swap(&swap, leader, &victim.offer, SimTime::ZERO).unwrap_err();
    assert!(
        matches!(err, atomic_swaps::market::VerifyError::ForeignHashlock { .. }),
        "got {err:?}"
    );
}

#[test]
fn epoch_clearing_is_deterministic_and_consumes_the_book() {
    let build = || {
        let mut service = ClearingService::new();
        for seed in 1..=6u8 {
            let gives = format!("k{}", seed % 3);
            let wants = format!("k{}", (seed + 1) % 3);
            service.submit(party(seed, &gives, &wants).offer);
        }
        service
    };
    let delta = Delta::from_ticks(10);
    // Determinism across service instances: the same book clears the same
    // way every time.
    let mut svc_a = build();
    let mut svc_b = build();
    let a = svc_a.clear(delta, SimTime::ZERO).expect("clears");
    let b = svc_b.clear(delta, SimTime::ZERO).expect("clears");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.offer_of_vertex, y.offer_of_vertex);
        assert_eq!(x.id, y.id);
    }
    // Epochs consume: the matched offers are gone, so re-clearing the same
    // service matches nothing.
    assert!(svc_a.clear(delta, SimTime::ZERO).expect("clears").is_empty());
    // And each cleared digraph runs to Deal.
    for (i, swap) in a.iter().enumerate() {
        let setup = SwapSetup::generate(
            swap.spec.digraph.clone(),
            &atomic_swaps::core::setup::SetupConfig { key_height: 4, ..Default::default() },
            &mut SimRng::from_seed(900 + i as u64),
        )
        .expect("valid");
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        assert!(report.all_deal());
    }
}
