//! Cross-validation of §4.4: the protocol's phases really are the pebble
//! games. Contract publication rounds must match the lazy game; trigger
//! propagation must respect the eager game on the transpose (Lemmas 4.5
//! and 4.6).

use std::collections::BTreeSet;

use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::digraph::{generators, Digraph};
use atomic_swaps::pebble::{EagerPebbleGame, LazyPebbleGame};
use atomic_swaps::sim::SimRng;

fn fast_config() -> SetupConfig {
    SetupConfig { key_height: 4, ..SetupConfig::default() }
}

/// Runs the protocol and returns, per arc, the round (multiple of Δ from
/// T₀) at which its contract was published.
fn publication_rounds(digraph: Digraph, seed: u64) -> (Vec<u64>, Vec<u64>, u64) {
    let setup =
        SwapSetup::generate(digraph, &fast_config(), &mut SimRng::from_seed(seed)).expect("valid");
    let delta = setup.spec.delta.ticks();
    let t0 = setup.spec.start.ticks() - delta;
    let arc_count = setup.spec.digraph.arc_count();
    let report = SwapRunner::new(setup, RunConfig::default()).run();
    assert!(report.all_deal());
    let mut publish = vec![u64::MAX; arc_count];
    for entry in report.trace.entries_of_kind("contract.published") {
        // detail format: "arc aN round R"
        let arc: usize = entry
            .detail
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.strip_prefix('a'))
            .and_then(|s| s.parse().ok())
            .expect("trace detail parses");
        let round = (entry.time.ticks() - t0) / delta;
        publish[arc] = round;
    }
    let trigger: Vec<u64> = report
        .triggered_at
        .iter()
        .map(|t| (t.expect("all triggered").ticks() - t0) / delta)
        .collect();
    (publish, trigger, delta)
}

/// Runs the lazy pebble game, returning per-arc pebbling rounds (round 1 =
/// initial leader placement, matching protocol round 0 publications being
/// *visible* at round 1).
fn lazy_rounds(digraph: &Digraph, leaders: &BTreeSet<atomic_swaps::digraph::VertexId>) -> Vec<u64> {
    let mut game = LazyPebbleGame::new(digraph, leaders);
    let mut rounds = vec![u64::MAX; digraph.arc_count()];
    let mut r = 0;
    loop {
        let placed = game.step();
        if placed.is_empty() {
            break;
        }
        r += 1;
        for arc in placed {
            rounds[arc.index()] = r;
        }
        if game.all_pebbled() {
            break;
        }
    }
    rounds
}

#[test]
fn phase_one_is_the_lazy_pebble_game() {
    for (digraph, seed) in [
        (generators::herlihy_three_party(), 1u64),
        (generators::two_leader_triangle(), 2),
        (generators::cycle(5), 3),
        (generators::star(4), 4),
        (generators::flower(2, 3), 5),
    ] {
        let setup =
            SwapSetup::generate(digraph.clone(), &fast_config(), &mut SimRng::from_seed(seed))
                .expect("valid");
        let leaders: BTreeSet<_> = setup.spec.leaders.iter().copied().collect();
        drop(setup);
        let (publish, _, _) = publication_rounds(digraph.clone(), seed);
        let pebbles = lazy_rounds(&digraph, &leaders);
        // Publication at protocol round k ⇒ visible at k+1 ⇔ pebble at
        // round k+1.
        for arc in digraph.arcs() {
            assert_eq!(
                publish[arc.id.index()] + 1,
                pebbles[arc.id.index()],
                "arc {} of {:?}",
                arc.id,
                digraph.render()
            );
        }
    }
}

#[test]
fn phase_one_within_diam_rounds() {
    // Lemma 4.5: contracts on every arc within diam(D)·Δ of T₀.
    for (digraph, seed) in [
        (generators::herlihy_three_party(), 11u64),
        (generators::two_leader_triangle(), 12),
        (generators::cycle(7), 13),
        (generators::complete(4), 14),
    ] {
        let diam = digraph.diameter() as u64;
        let (publish, _, _) = publication_rounds(digraph, seed);
        for (i, &round) in publish.iter().enumerate() {
            assert!(round <= diam, "arc {i} published at round {round} > diam {diam}");
        }
    }
}

#[test]
fn phase_two_within_two_diam_rounds() {
    // Lemma 4.6 / Theorem 4.7: triggers within 2·diam rounds.
    for (digraph, seed) in [
        (generators::herlihy_three_party(), 21u64),
        (generators::two_leader_triangle(), 22),
        (generators::cycle(6), 23),
        (generators::complete(4), 24),
    ] {
        let diam = digraph.diameter() as u64;
        let (_, trigger, _) = publication_rounds(digraph, seed);
        for (i, &round) in trigger.iter().enumerate() {
            assert!(
                round <= 2 * diam + 1,
                "arc {i} triggered at round {round} > 2·diam {diam} (+1 for T = T₀+Δ)"
            );
        }
    }
}

#[test]
fn eager_game_on_transpose_bounds_secret_spread() {
    // Each leader's secret reaches every arc no later than the eager pebble
    // game starting at that leader on Dᵀ (the protocol can only be as fast
    // as its abstraction).
    for (digraph, seed) in [(generators::herlihy_three_party(), 31u64), (generators::cycle(5), 32)]
    {
        let setup =
            SwapSetup::generate(digraph.clone(), &fast_config(), &mut SimRng::from_seed(seed))
                .expect("valid");
        let leader = setup.spec.leaders[0];
        drop(setup);
        let transpose = digraph.transpose();
        let mut game = EagerPebbleGame::new(&transpose, leader);
        let eager_rounds = game.run_to_completion().expect("strongly connected");
        let (publish, trigger, _) = publication_rounds(digraph.clone(), seed);
        let phase_one_end = publish.iter().max().copied().unwrap();
        let last_trigger = trigger.iter().max().copied().unwrap();
        // Secrets spread in at most eager_rounds rounds after Phase One.
        assert!(
            last_trigger <= phase_one_end + eager_rounds + 1,
            "triggers took {} rounds after phase one; eager bound {}",
            last_trigger - phase_one_end,
            eager_rounds
        );
    }
}
