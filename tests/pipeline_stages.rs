//! Staged-pipeline coverage for the exchange: the `EpochStage` machine,
//! clearing/execution overlap across epochs, mid-epoch submissions landing
//! in the next clearing delta, cancellation racing an in-flight epoch, and
//! per-stage wall-tick attribution. (The byte-equivalence goldens against
//! the deprecated batch shim live in `tests/exchange_pipeline.rs`.)

use atomic_swaps::core::exchange::{
    EpochStage, Exchange, ExchangeConfig, ExchangeParty, StageCosts, StepEvent,
};
use atomic_swaps::market::{AssetKind, CancelError, OfferStatus};
use atomic_swaps::sim::SimRng;

/// A wave of `rings` disjoint 3-party rings over kinds namespaced by
/// `wave`, deterministic per seed.
fn wave(wave: usize, rings: usize, rng: &mut SimRng) -> Vec<ExchangeParty> {
    let mut parties = Vec::new();
    for r in 0..rings {
        for p in 0..3 {
            parties.push(ExchangeParty::generate(
                rng,
                4,
                AssetKind::new(format!("w{wave}r{r}k{p}")),
                AssetKind::new(format!("w{wave}r{r}k{}", (p + 1) % 3)),
            ));
        }
    }
    parties
}

/// Nonzero stage costs so the overlap is visible in wall ticks.
fn costs() -> StageCosts {
    StageCosts {
        clearing_base: 10,
        clearing_per_examined: 1,
        clearing_per_cycle: 1,
        provisioning_base: 5,
        provisioning_per_party: 1,
        settling_base: 5,
        settling_per_swap: 1,
    }
}

/// Batch driving: each wave is submitted only after the previous wave's
/// epoch fully settled, so no stages ever overlap.
fn drive_batch(waves: usize, rings: usize, threads: usize, seed: u64) -> Exchange {
    let mut rng = SimRng::from_seed(seed);
    let mut exchange =
        Exchange::new(ExchangeConfig { threads, stage_costs: costs(), ..Default::default() });
    for w in 0..waves {
        for party in wave(w, rings, &mut rng) {
            exchange.submit(party);
        }
        let executed = exchange.drive_until_quiescent().expect("epoch settles");
        assert_eq!(executed.len(), rings);
    }
    exchange
}

/// Pipelined driving: wave `w + 1` is submitted the instant epoch `w`
/// enters `Executing`, so its clearing and provisioning overlap epoch `w`'s
/// execution. Returns the exchange and the observed event log.
fn drive_pipelined(
    waves: usize,
    rings: usize,
    threads: usize,
    seed: u64,
) -> (Exchange, Vec<String>) {
    let mut rng = SimRng::from_seed(seed);
    let mut exchange =
        Exchange::new(ExchangeConfig { threads, stage_costs: costs(), ..Default::default() });
    let mut next_wave = 0usize;
    for party in wave(next_wave, rings, &mut rng) {
        exchange.submit(party);
    }
    next_wave += 1;
    let mut events = Vec::new();
    let mut settled_swaps = 0usize;
    loop {
        match exchange.step().expect("pipeline advances") {
            StepEvent::StageEntered { epoch, stage, .. } => {
                events.push(format!("enter:{epoch}:{stage}"));
                if stage == EpochStage::Executing && next_wave < waves {
                    for party in wave(next_wave, rings, &mut rng) {
                        exchange.submit(party);
                    }
                    next_wave += 1;
                }
            }
            StepEvent::EpochSettled { epoch, executed, .. } => {
                events.push(format!("settled:{epoch}"));
                settled_swaps += executed.len();
            }
            StepEvent::Quiescent => break,
        }
    }
    assert_eq!(next_wave, waves, "every wave was injected");
    assert_eq!(settled_swaps, waves * rings);
    (exchange, events)
}

#[test]
fn pipelining_overlaps_clearing_with_execution_and_wins_wall_ticks() {
    const WAVES: usize = 3;
    const RINGS: usize = 2;
    let mut pipelined_baseline: Option<String> = None;
    for threads in [1usize, 2, 8] {
        let batch = drive_batch(WAVES, RINGS, threads, 0x18);
        let (pipelined, events) = drive_pipelined(WAVES, RINGS, threads, 0x18);
        let (batch, pipelined) = (batch.report().clone(), pipelined.report().clone());

        // Same market outcome either way.
        assert_eq!(batch.swaps_settled, (WAVES * RINGS) as u64, "threads={threads}");
        assert_eq!(pipelined.swaps_settled, batch.swaps_settled, "threads={threads}");
        assert_eq!(pipelined.swaps_refunded, 0);
        assert_eq!(pipelined.storage, batch.storage, "threads={threads}");

        // The pipelining win, strictly, at every worker count: stages of
        // epoch k+1 hid beneath epoch k's execution.
        assert!(
            pipelined.wall_ticks < batch.wall_ticks,
            "threads={threads}: pipelined {} vs batch {}",
            pipelined.wall_ticks,
            batch.wall_ticks
        );
        // Attribution sums to the total in both driving modes.
        assert_eq!(batch.stage_ticks.total(), batch.wall_ticks, "threads={threads}");
        assert_eq!(pipelined.stage_ticks.total(), pipelined.wall_ticks, "threads={threads}");
        // Batch pays clearing once per epoch; the pipeline pays it only
        // while execution is not hiding it.
        assert!(pipelined.stage_ticks.clearing < batch.stage_ticks.clearing, "threads={threads}");

        // The overlap itself, observed: epoch 1 started clearing before
        // epoch 0 settled.
        let clears1 = events.iter().position(|e| e == "enter:1:clearing").unwrap();
        let settles0 = events.iter().position(|e| e == "settled:0").unwrap();
        assert!(clears1 < settles0, "threads={threads}: {events:?}");

        // Worker count is a wall-clock knob, never a semantic one — also
        // for the staged driver.
        let fingerprint = format!("{pipelined:?}");
        match &pipelined_baseline {
            None => pipelined_baseline = Some(fingerprint),
            Some(base) => assert_eq!(base, &fingerprint, "threads={threads}"),
        }
    }
}

#[test]
fn mid_epoch_submissions_land_in_next_clearing_delta() {
    // Regression for the batch-era blind spot: an offer submitted while an
    // epoch is in flight must be seen by the *next* clearing, not wait for
    // settlement. Default (zero) stage costs: the fix is about admission
    // order, not simulated latency.
    let mut rng = SimRng::from_seed(0x1A);
    let mut exchange = Exchange::new(ExchangeConfig::default());
    for party in wave(0, 1, &mut rng) {
        exchange.submit(party);
    }
    // Step epoch 0 up to execution.
    loop {
        match exchange.step().unwrap() {
            StepEvent::StageEntered { stage: EpochStage::Executing, epoch, .. } => {
                assert_eq!(epoch, 0);
                break;
            }
            StepEvent::StageEntered { .. } => {}
            other => panic!("unexpected event: {other:?}"),
        }
    }
    // Mid-epoch submissions arrive while epoch 0 executes.
    let late: Vec<_> = wave(1, 1, &mut rng).into_iter().map(|p| exchange.submit(p)).collect();
    // The very next step admits epoch 1's clearing — before epoch 0 has
    // settled — and the late offers are matched into epoch 1.
    match exchange.step().unwrap() {
        StepEvent::StageEntered { epoch: 1, stage: EpochStage::Clearing, .. } => {}
        other => panic!("expected epoch 1 clearing admission, got {other:?}"),
    }
    assert_eq!(exchange.stage_of(0), Some(EpochStage::Executing));
    for id in &late {
        assert!(
            matches!(exchange.service().status(*id), Some(OfferStatus::Matched { epoch: 1, .. })),
            "late offer {id} should be matched by epoch 1's clearing"
        );
    }
    let executed = exchange.drive_until_quiescent().unwrap();
    assert_eq!(executed.len(), 2);
    assert!(executed.iter().all(|s| s.report.all_deal()));
    for id in &late {
        assert_eq!(exchange.service().status(*id), Some(OfferStatus::Settled));
    }
}

#[test]
fn cancel_racing_in_flight_epoch_fails_and_never_unwinds() {
    let mut rng = SimRng::from_seed(0x1B);
    let mut exchange = Exchange::new(ExchangeConfig::default());
    let ids: Vec<_> = wave(0, 1, &mut rng).into_iter().map(|p| exchange.submit(p)).collect();

    // Advance through every stage; at each one, cancelling a matched offer
    // must fail with `CancelError::NotOpen` carrying the `Matched` status,
    // and must never unwind the provisioned swap.
    let mut checked_stages = 0;
    loop {
        match exchange.step().unwrap() {
            StepEvent::StageEntered { stage, .. } => {
                if stage >= EpochStage::Provisioning {
                    let err = exchange.cancel(ids[0]).unwrap_err();
                    assert!(
                        matches!(err, CancelError::NotOpen(id, OfferStatus::Matched { epoch: 0, .. }) if id == ids[0]),
                        "stage {stage}: expected NotOpen(Matched), got {err:?}"
                    );
                    checked_stages += 1;
                }
            }
            StepEvent::EpochSettled { epoch, executed, .. } => {
                assert_eq!(epoch, 0);
                assert_eq!(executed.len(), 1, "the raced cancel never unwound the swap");
                assert!(executed[0].report.all_deal());
                break;
            }
            StepEvent::Quiescent => panic!("epoch in flight"),
        }
    }
    assert_eq!(checked_stages, 3, "provisioning, executing, settling all raced");
    // The failed cancels left no trace: every offer settled, none counted
    // as cancelled.
    for id in &ids {
        assert_eq!(exchange.service().status(*id), Some(OfferStatus::Settled));
    }
    assert_eq!(exchange.report().offers_cancelled, 0);
    assert_eq!(exchange.report().swaps_settled, 1);
    assert!(exchange.ledger().verify_integrity());
}

#[test]
fn quiescence_is_stable_with_stragglers() {
    let mut rng = SimRng::from_seed(0x1C);
    let mut exchange = Exchange::new(ExchangeConfig::default());
    for party in wave(0, 1, &mut rng) {
        exchange.submit(party);
    }
    let straggler = exchange.submit(ExchangeParty::generate(
        &mut rng,
        4,
        AssetKind::new("straggler"),
        AssetKind::new("nobody"),
    ));
    let executed = exchange.drive_until_quiescent().unwrap();
    assert_eq!(executed.len(), 1);
    assert!(exchange.is_quiescent());
    assert_eq!(exchange.service().status(straggler), Some(OfferStatus::Open));
    // A drained pipeline stays drained: no phantom epochs, no wall drift.
    let wall = exchange.report().wall_ticks;
    assert!(matches!(exchange.step().unwrap(), StepEvent::Quiescent));
    assert!(exchange.drive_until_quiescent().unwrap().is_empty());
    assert_eq!(exchange.report().wall_ticks, wall);
    assert_eq!(exchange.report().epochs, 1);
}

#[test]
fn reservation_released_offers_clear_after_settlement() {
    // A party whose first swap is in flight submits a second offer; the
    // next clearing must skip it (the party's key material is reserved),
    // and the first swap's settlement must wake the pipeline so the
    // rolled-over offer clears — without any unrelated submission.
    let mut rng = SimRng::from_seed(0x1D);
    let alice = ExchangeParty::generate(&mut rng, 4, AssetKind::new("x"), AssetKind::new("y"));
    let bob = ExchangeParty::generate(&mut rng, 4, AssetKind::new("y"), AssetKind::new("x"));
    let mut exchange = Exchange::new(ExchangeConfig::default());
    exchange.submit(alice.clone());
    exchange.submit(bob);
    // Step epoch 0 into execution.
    loop {
        match exchange.step().unwrap() {
            StepEvent::StageEntered { stage: EpochStage::Executing, epoch: 0, .. } => break,
            StepEvent::StageEntered { .. } => {}
            other => panic!("unexpected event: {other:?}"),
        }
    }
    // Mid-flight, alice returns with a fresh trade (same key) and a
    // counterparty arrives; epoch 1's clearing skips alice (reserved).
    let alice_again =
        ExchangeParty { gives: AssetKind::new("p"), wants: AssetKind::new("q"), ..alice };
    let second = exchange.submit(alice_again);
    let counter = exchange.submit(ExchangeParty::generate(
        &mut rng,
        4,
        AssetKind::new("q"),
        AssetKind::new("p"),
    ));
    // Drive dry: epoch 1 clears nothing, epoch 0 settles and releases the
    // reservation, and the wake-up admits a further clearing that matches
    // the rolled-over pair.
    let executed = exchange.drive_until_quiescent().unwrap();
    assert_eq!(executed.len(), 2, "both of alice's swaps executed");
    assert_eq!(exchange.service().status(second), Some(OfferStatus::Settled));
    assert_eq!(exchange.service().status(counter), Some(OfferStatus::Settled));
    assert!(exchange.is_quiescent());
    assert_eq!(exchange.report().swaps_settled, 2);
}

#[test]
fn settlement_never_admits_phantom_epochs_for_ordinary_leftovers() {
    // A party's settlement releases its reservation; if the same party
    // also has an ordinary no-counterparty leftover (seen and passed over
    // by clearing *without* any reservation), the wake-up must NOT fire —
    // otherwise every settlement would admit a zero-swap epoch and inflate
    // wall ticks by Δ each time.
    let mut rng = SimRng::from_seed(0x1E);
    let alice = ExchangeParty::generate(&mut rng, 4, AssetKind::new("x"), AssetKind::new("y"));
    let mut exchange = Exchange::new(ExchangeConfig::default());
    exchange.submit(alice.clone());
    exchange.submit(ExchangeParty::generate(&mut rng, 4, AssetKind::new("y"), AssetKind::new("x")));
    // Alice's second offer has no counterparty: same clearing sees it
    // unreserved and simply leaves it open.
    let leftover = exchange.submit(ExchangeParty {
        gives: AssetKind::new("p"),
        wants: AssetKind::new("nobody"),
        ..alice
    });
    let executed = exchange.drive_until_quiescent().unwrap();
    assert_eq!(executed.len(), 1);
    assert!(exchange.is_quiescent(), "no phantom clearing admitted for the leftover");
    assert_eq!(exchange.report().epochs, 1);
    assert_eq!(exchange.service().status(leftover), Some(OfferStatus::Open));
}
