//! Cross-protocol equivalence properties (Theorem 4.7/4.14 and 4.9/4.12
//! side by side): over random single-leader-feasible digraph families, the
//! general §4.5 hashkey protocol and the §4.6 single-leader HTLC protocol
//! — both executed by the one event-driven engine — must agree on what
//! matters:
//!
//! (a) all-conforming runs end all-`Deal` under *both* protocols with
//!     identical asset movement (every arc's asset reaches the arc tail);
//! (b) under a follower `Halt`, no conforming party ends worse off under
//!     either protocol (`Underwater` never appears for conforming parties).

use proptest::prelude::*;

use atomic_swaps::chain::Owner;
use atomic_swaps::core::runner::{RunConfig, RunReport};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::core::{Behavior, Lockstep, Outcome, ProtocolKind, SwapInstance};
use atomic_swaps::digraph::{generators, Digraph, VertexId};
use atomic_swaps::sim::SimRng;

/// A random single-leader-feasible digraph family: cycles, stars, and
/// flowers all have singleton feedback vertex sets.
fn family(kind: u8, size: u8) -> Digraph {
    match kind % 3 {
        0 => generators::cycle(3 + (size % 4) as usize),
        1 => generators::star(2 + (size % 3) as usize),
        _ => generators::flower(2 + (size % 2) as usize, 2 + (size % 2) as usize),
    }
}

fn provision(digraph: Digraph, seed: u64) -> SwapSetup {
    let config = SetupConfig { key_height: 3, ..SetupConfig::default() };
    SwapSetup::generate(digraph, &config, &mut SimRng::from_seed(seed))
        .expect("families are strongly connected")
}

/// Runs one protocol to completion, returning the report plus the final
/// owner-check: whether every arc's asset ended with the arc's tail.
fn run(setup: SwapSetup, config: RunConfig, protocol: ProtocolKind) -> (RunReport, Vec<bool>) {
    let delta = setup.spec.delta;
    let instance = SwapInstance::new(0, setup, config).with_protocol(protocol);
    let (report, setup) = instance.engine(Lockstep::new(delta)).run_full();
    let moved: Vec<bool> = setup
        .spec
        .digraph
        .arcs()
        .map(|arc| {
            let chain = setup.chains.get(setup.chain_of_arc[arc.id.index()]).expect("chain");
            let asset = setup.asset_of_arc[arc.id.index()];
            chain.assets().owner(asset) == Some(Owner::Party(setup.spec.address_of(arc.tail)))
        })
        .collect();
    (report, moved)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// (a) All-conforming: both protocols end all-`Deal`, and the asset
    /// movement is identical arc for arc (everything reached its tail).
    #[test]
    fn conforming_runs_agree_across_protocols(kind in 0u8..3, size in 0u8..4, seed in 0u64..1000) {
        let digraph = family(kind, size);
        prop_assume!(digraph.arc_count() <= 12);
        let setup = provision(digraph, seed);
        prop_assert_eq!(setup.spec.leaders.len(), 1);
        let (hashkey, hashkey_moved) =
            run(setup.clone(), RunConfig::default(), ProtocolKind::Hashkey);
        let (htlc, htlc_moved) = run(setup, RunConfig::default(), ProtocolKind::Htlc);
        prop_assert!(hashkey.all_deal(), "hashkey outcomes: {:?}", hashkey.outcomes);
        prop_assert!(htlc.all_deal(), "htlc outcomes: {:?}", htlc.outcomes);
        prop_assert_eq!(&hashkey.arc_triggered, &htlc.arc_triggered);
        prop_assert_eq!(&hashkey_moved, &htlc_moved, "asset movement must be identical");
        prop_assert!(htlc_moved.iter().all(|&m| m), "every asset reaches its tail");
        // The §4.6 savings hold everywhere, not just on the worked examples.
        prop_assert!(htlc.storage.total_bytes() < hashkey.storage.total_bytes());
        prop_assert!(htlc.metrics.unlock_bytes < hashkey.metrics.unlock_bytes);
    }

    /// (b) A halted follower never drags a conforming party underwater in
    /// either protocol, whatever the halt round.
    #[test]
    fn follower_halt_harms_no_conforming_party_in_either_protocol(
        kind in 0u8..3,
        size in 0u8..4,
        seed in 0u64..1000,
        follower_pick in 0usize..8,
        halt_round in 0u64..8,
    ) {
        let digraph = family(kind, size);
        prop_assume!(digraph.arc_count() <= 12);
        let setup = provision(digraph, seed);
        let leader = setup.spec.leaders[0];
        let followers: Vec<VertexId> =
            setup.spec.digraph.vertices().filter(|&v| v != leader).collect();
        let halted = followers[follower_pick % followers.len()];
        let mut config = RunConfig::default();
        config.behaviors.insert(halted, Behavior::Halt { at_round: halt_round });
        let (hashkey, _) = run(setup.clone(), config.clone(), ProtocolKind::Hashkey);
        let (htlc, _) = run(setup, config, ProtocolKind::Htlc);
        prop_assert!(
            hashkey.no_conforming_underwater(),
            "hashkey, halt {} at {}: {:?}", halted, halt_round, hashkey.outcomes
        );
        prop_assert!(
            htlc.no_conforming_underwater(),
            "htlc, halt {} at {}: {:?}", halted, halt_round, htlc.outcomes
        );
        // The halted party itself may lose, but never anyone conforming —
        // and a conforming party's outcome is acceptable in both worlds.
        for (i, (&h, &t)) in hashkey.outcomes.iter().zip(htlc.outcomes.iter()).enumerate() {
            if VertexId::new(i as u32) != halted {
                prop_assert!(h != Outcome::Underwater && t != Outcome::Underwater);
            }
        }
    }
}
