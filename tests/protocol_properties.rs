//! Property-based tests: the paper's guarantees hold on *randomized*
//! digraphs and failure schedules, not just the hand-picked families.

use proptest::prelude::*;

use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::core::{Behavior, Outcome};
use atomic_swaps::digraph::{generators, Digraph, VertexId};
use atomic_swaps::market::LeaderStrategy;
use atomic_swaps::sim::SimRng;

fn fast_config() -> SetupConfig {
    SetupConfig {
        key_height: 4,
        leader_strategy: LeaderStrategy::MinimumExact,
        ..SetupConfig::default()
    }
}

fn random_digraph(seed: u64, n: usize, extra: f64) -> Digraph {
    generators::random_strongly_connected(n, extra, &mut SimRng::from_seed(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Liveness (Theorem 4.7): every all-conforming run on a random
    /// strongly connected digraph completes with Deal for all, within the
    /// 2·diam·Δ bound.
    #[test]
    fn all_conforming_always_deal(
        seed in 0u64..1_000,
        n in 3usize..7,
        extra in 0.0f64..0.5,
    ) {
        let digraph = random_digraph(seed, n, extra);
        let setup = SwapSetup::generate(
            digraph,
            &fast_config(),
            &mut SimRng::from_seed(seed ^ 0xAAAA),
        ).expect("strongly connected inputs are valid swaps");
        let start = setup.spec.start;
        let bound = setup.spec.worst_case_duration();
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        prop_assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        let completion = report.completion.expect("conforming runs complete");
        prop_assert!(completion - start <= bound);
        prop_assert!(report.settled);
    }

    /// Safety (Theorem 4.9): a random halting adversary at a random round
    /// never drives a conforming party Underwater.
    #[test]
    fn random_single_halt_never_underwater(
        seed in 0u64..1_000,
        n in 3usize..6,
        extra in 0.0f64..0.4,
        victim in 0u32..6,
        round in 0u64..12,
    ) {
        let digraph = random_digraph(seed, n, extra);
        let victim = VertexId::new(victim % n as u32);
        let setup = SwapSetup::generate(
            digraph,
            &fast_config(),
            &mut SimRng::from_seed(seed ^ 0xBBBB),
        ).expect("valid");
        let mut config = RunConfig::default();
        config.behaviors.insert(victim, Behavior::Halt { at_round: round });
        let report = SwapRunner::new(setup, config).run();
        prop_assert!(
            report.no_conforming_underwater(),
            "halt {victim} at {round}: {:?}",
            report.outcomes
        );
    }

    /// Safety under multiple simultaneous random deviators of mixed kinds.
    #[test]
    fn random_multi_deviator_never_underwater(
        seed in 0u64..500,
        n in 3usize..6,
        mask in 1u32..14,
        kind in 0u8..4,
        round in 0u64..8,
    ) {
        let digraph = random_digraph(seed, n, 0.3);
        let setup = SwapSetup::generate(
            digraph,
            &fast_config(),
            &mut SimRng::from_seed(seed ^ 0xCCCC),
        ).expect("valid");
        let mut config = RunConfig::default();
        for v in 0..n as u32 {
            if mask & (1 << (v % 8)) != 0 {
                let behavior = match kind {
                    0 => Behavior::Halt { at_round: round },
                    1 => Behavior::WithholdSecret,
                    2 => Behavior::NeverPublish { arcs: None },
                    _ => Behavior::PrematureReveal,
                };
                config.behaviors.insert(VertexId::new(v), behavior);
            }
        }
        // At least one party must remain conforming for the assertion to
        // say anything; if all deviate the check is vacuous but harmless.
        let report = SwapRunner::new(setup, config).run();
        prop_assert!(
            report.no_conforming_underwater(),
            "mask {mask:#b} kind {kind}: {:?}",
            report.outcomes
        );
    }

    /// Outcome coherence: the per-arc trigger vector and the per-party
    /// outcomes always agree with the Figure 3 definitions.
    #[test]
    fn outcomes_consistent_with_triggers(
        seed in 0u64..500,
        n in 3usize..6,
        victim in 0u32..6,
        round in 0u64..10,
    ) {
        let digraph = random_digraph(seed, n, 0.25);
        let victim = VertexId::new(victim % n as u32);
        let setup = SwapSetup::generate(
            digraph.clone(),
            &fast_config(),
            &mut SimRng::from_seed(seed ^ 0xDDDD),
        ).expect("valid");
        let mut config = RunConfig::default();
        config.behaviors.insert(victim, Behavior::Halt { at_round: round });
        let report = SwapRunner::new(setup, config).run();
        for v in digraph.vertices() {
            let entering = (
                digraph.in_arcs(v).filter(|a| report.arc_triggered[a.id.index()]).count(),
                digraph.in_degree(v),
            );
            let leaving = (
                digraph.out_arcs(v).filter(|a| report.arc_triggered[a.id.index()]).count(),
                digraph.out_degree(v),
            );
            prop_assert_eq!(report.outcomes[v.index()], Outcome::classify(entering, leaving));
        }
    }
}
