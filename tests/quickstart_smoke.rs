//! Smoke test executing the `quickstart` example's scenario inside the
//! test harness: the §1 three-party swap, seed 2018, all parties
//! conforming. `examples/quickstart.rs` runs this same flow as a binary
//! (CI executes it via `cargo run --example quickstart`); this test keeps
//! the scenario exercised by plain `cargo test` too.

use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::digraph::generators;
use atomic_swaps::sim::SimRng;

#[test]
fn quickstart_scenario_runs_to_completion() {
    let digraph = generators::herlihy_three_party();
    let mut rng = SimRng::from_seed(2018);
    let setup = SwapSetup::generate(digraph, &SetupConfig::default(), &mut rng)
        .expect("the §1 digraph is a valid swap");
    let start = setup.spec.start;
    let worst_case = setup.spec.worst_case_duration();

    let report = SwapRunner::new(setup, RunConfig::default()).run();

    assert!(report.all_deal(), "every conforming run must end in Deal");
    assert!(report.settled, "every contract must reach a terminal state");
    let completion = report.completion.expect("all-conforming swaps complete");
    assert!(completion - start <= worst_case, "Theorem 4.7's 2·diam·Δ bound must hold");
    // The timeline the example prints exists: three deploys, three triggers.
    assert_eq!(report.trace.entries_of_kind("contract.published").count(), 3);
    assert_eq!(report.trace.entries_of_kind("arc.triggered").count(), 3);
}
