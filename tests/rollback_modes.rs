//! Rollback-mode invariance at the exchange tier.
//!
//! `RollbackMode::Journal` (the undo-log hot path, the default) and
//! `RollbackMode::Snapshot` (the clone-the-world reference) must publish
//! byte-identical `ExchangeReport`s — pinned via `Debug`, which covers
//! every counter including the new `tx_executed`/`tx_rolled_back` pair —
//! on the E19 rolling book across 1/2/8 pool workers. Six submission
//! waves roll through a multi-slot pipeline (wave w+1 lands the instant
//! epoch w enters `Executing`), so journaled transactions execute
//! concurrently on pool workers while later epochs clear — exactly the
//! regime where a rollback-path divergence would smear across reports.

use atomic_swaps::chain::RollbackMode;
use atomic_swaps::core::exchange::{
    EpochStage, Exchange, ExchangeConfig, ExchangeParty, StageCosts, StepEvent,
};
use atomic_swaps::core::runner::RunConfig;
use atomic_swaps::market::AssetKind;
use atomic_swaps::sim::SimRng;

const WAVES: usize = 6;
const WAVE_RINGS: usize = 3;

/// Wave `w` of the E19 rolling book: disjoint rings with mixed cycle
/// lengths 2..=4, deterministic per wave.
fn wave(w: usize) -> Vec<ExchangeParty> {
    let mut rng = SimRng::from_seed(0xE19 + w as u64);
    let mut parties = Vec::new();
    for r in 0..WAVE_RINGS {
        let len = 2 + (w + r) % 3;
        for p in 0..len {
            parties.push(ExchangeParty::generate(
                &mut rng,
                4,
                AssetKind::new(format!("w{w}r{r}k{p}")),
                AssetKind::new(format!("w{w}r{r}k{}", (p + 1) % len)),
            ));
        }
    }
    parties
}

/// Drives the rolling book to quiescence under `mode` and `threads`,
/// returning the report pinned via `Debug`.
fn drive(mode: RollbackMode, threads: usize) -> String {
    let costs = StageCosts {
        clearing_base: 2,
        clearing_per_examined: 0,
        clearing_per_cycle: 0,
        provisioning_base: 2,
        provisioning_per_party: 0,
        settling_base: 2,
        settling_per_swap: 0,
    };
    let mut exchange = Exchange::new(ExchangeConfig {
        threads,
        executing_slots: 2,
        stage_costs: costs,
        run: RunConfig { rollback_mode: mode, ..RunConfig::default() },
        ..Default::default()
    });
    let mut next = 0usize;
    for p in wave(next) {
        exchange.submit(p);
    }
    next += 1;
    loop {
        match exchange.step().expect("pipeline advances") {
            StepEvent::StageEntered { stage: EpochStage::Executing, .. } if next < WAVES => {
                for p in wave(next) {
                    exchange.submit(p);
                }
                next += 1;
            }
            StepEvent::Quiescent => break,
            _ => {}
        }
    }
    assert_eq!(next, WAVES, "every wave injected");
    let report = exchange.into_report();
    assert_eq!(report.swaps_settled, (WAVES * WAVE_RINGS) as u64, "all rings settle");
    assert!(report.tx_executed > 0, "executed transactions are counted");
    format!("{report:?}")
}

/// The acceptance pin: `Journal` (default) and `Snapshot` produce
/// byte-identical `ExchangeReport`s across modes × 1/2/8 pool workers.
#[test]
fn reports_byte_invariant_across_rollback_modes_and_workers() {
    let baseline = drive(RollbackMode::Journal, 1);
    for mode in [RollbackMode::Journal, RollbackMode::Snapshot] {
        for threads in [1, 2, 8] {
            assert_eq!(baseline, drive(mode, threads), "{mode:?} / {threads} workers");
        }
    }
}
