//! Integration tests validating the paper's theorems end to end, across
//! crates: digraph → crypto → chains → contracts → protocol.

use std::collections::BTreeMap;

use atomic_swaps::contract::SwapSpec;
use atomic_swaps::core::runner::{RunConfig, SwapRunner};
use atomic_swaps::core::setup::{SetupConfig, SwapSetup};
use atomic_swaps::core::{Behavior, Outcome};
use atomic_swaps::crypto::{MssKeypair, Secret};
use atomic_swaps::digraph::{generators, Digraph, VertexId};
use atomic_swaps::sim::{Delta, SimRng, SimTime};

fn fast_config() -> SetupConfig {
    SetupConfig { key_height: 4, ..SetupConfig::default() }
}

fn conforming_run(digraph: Digraph, seed: u64) -> atomic_swaps::core::RunReport {
    let setup = SwapSetup::generate(digraph, &fast_config(), &mut SimRng::from_seed(seed))
        .expect("valid swap");
    SwapRunner::new(setup, RunConfig::default()).run()
}

/// Theorem 4.7: with all parties conforming, every contract triggers within
/// `2·diam(D)·Δ` of the protocol start, across digraph families.
#[test]
fn theorem_4_7_completion_bound_across_families() {
    let families: Vec<(&str, Digraph)> = vec![
        ("three-party", generators::herlihy_three_party()),
        ("cycle(6)", generators::cycle(6)),
        ("complete(4)", generators::complete(4)),
        ("star(4)", generators::star(4)),
        ("flower(2,3)", generators::flower(2, 3)),
        ("two-leader", generators::two_leader_triangle()),
        ("multigraph", generators::multigraph_pair()),
    ];
    for (name, digraph) in families {
        let setup = SwapSetup::generate(digraph, &fast_config(), &mut SimRng::from_seed(1))
            .expect("valid swap");
        let start = setup.spec.start;
        let bound = setup.spec.worst_case_duration();
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        assert!(report.all_deal(), "{name}: {:?}", report.outcomes);
        let completion = report.completion.unwrap_or_else(|| panic!("{name} incomplete"));
        assert!(
            completion - start <= bound,
            "{name}: completed {} after start, bound {}",
            completion - start,
            bound,
        );
    }
}

/// Theorem 4.9: no conforming party ends Underwater, under an exhaustive
/// sweep of single-party halting failures (every party × every round).
#[test]
fn theorem_4_9_exhaustive_halt_sweep() {
    let digraph = generators::two_leader_triangle();
    for party in 0..3u32 {
        for round in 0..9u64 {
            let setup =
                SwapSetup::generate(digraph.clone(), &fast_config(), &mut SimRng::from_seed(100))
                    .expect("valid");
            let mut config = RunConfig::default();
            config.behaviors.insert(VertexId::new(party), Behavior::Halt { at_round: round });
            let report = SwapRunner::new(setup, config).run();
            assert!(
                report.no_conforming_underwater(),
                "party {party} halted at {round}: {:?}",
                report.outcomes
            );
        }
    }
}

/// Theorem 4.9 under *pairs* of simultaneous deviators.
#[test]
fn theorem_4_9_two_deviator_combinations() {
    let digraph = generators::two_leader_triangle();
    let deviations: Vec<Behavior> = vec![
        Behavior::Halt { at_round: 2 },
        Behavior::WithholdSecret,
        Behavior::NeverPublish { arcs: None },
        Behavior::PrematureReveal,
        Behavior::EagerPublish,
    ];
    for a in 0..3u32 {
        for b in 0..3u32 {
            if a == b {
                continue;
            }
            for da in &deviations {
                for db in &deviations {
                    let setup = SwapSetup::generate(
                        digraph.clone(),
                        &fast_config(),
                        &mut SimRng::from_seed(200),
                    )
                    .expect("valid");
                    let mut config = RunConfig::default();
                    config.behaviors.insert(VertexId::new(a), da.clone());
                    config.behaviors.insert(VertexId::new(b), db.clone());
                    let report = SwapRunner::new(setup, config).run();
                    assert!(
                        report.no_conforming_underwater(),
                        "deviators {a}:{da:?} {b}:{db:?} → {:?}",
                        report.outcomes
                    );
                }
            }
        }
    }
}

/// Lemma 3.4 / Theorem 3.5 (impossibility direction): on a digraph that is
/// *not* strongly connected, the cut-off coalition X profits by triggering
/// its internal arcs and withholding the bridge — a free ride no protocol
/// can prevent.
#[test]
fn lemma_3_4_freeride_on_non_strongly_connected() {
    // x0,x1,x2 form a cycle, y0,y1,y2 form a cycle, one bridge x0→y0.
    let digraph = generators::bridged_cycles();
    assert!(!digraph.is_strongly_connected());
    let n = digraph.vertex_count();
    let mut rng = SimRng::from_seed(300);
    let keypairs: Vec<MssKeypair> =
        (0..n).map(|_| MssKeypair::from_seed_with_height(rng.bytes32(), 4)).collect();
    let secrets: Vec<Secret> = (0..n).map(|_| Secret::random(&mut rng)).collect();
    // Leaders: one per cycle (an FVS of the full digraph), so the spec is
    // well-formed except for strong connectivity.
    let x0 = digraph.vertex_by_name("x0").unwrap();
    let y0 = digraph.vertex_by_name("y0").unwrap();
    let delta = Delta::from_ticks(10);
    let spec = SwapSpec {
        leaders: vec![x0, y0],
        hashlocks: vec![secrets[x0.index()].hashlock(), secrets[y0.index()].hashlock()],
        addresses: keypairs.iter().map(|k| k.public_key().address()).collect(),
        keys: keypairs.iter().map(|k| k.public_key()).collect(),
        start: SimTime::ZERO + delta.times(1),
        delta,
        diam: digraph.diameter() as u64,
        broadcast_arcs: false,
        digraph: digraph.clone(),
    };
    assert!(spec.validate().is_err(), "spec must be rejected by honest parties");
    let setup = SwapSetup::from_parts(spec, keypairs, secrets, SimTime::ZERO);
    // The X coalition bypasses contracts entirely: direct transfers inside
    // X, nothing across the bridge.
    let bridge = digraph.arcs_between(x0, y0)[0];
    let mut config = RunConfig::default();
    for name in ["x0", "x1", "x2"] {
        let v = digraph.vertex_by_name(name).unwrap();
        config.behaviors.insert(v, Behavior::Direct { skip_arcs: vec![bridge] });
    }
    let report = SwapRunner::new(setup, config).run();
    // The coalition's transfers bypass contracts entirely: one direct
    // transfer per X-internal arc (the bridge is withheld), and nothing
    // else moves an asset without a contract.
    assert_eq!(report.metrics.direct_transfers, 3, "X ring moves its 3 internal arcs directly");
    // Every coalition member does at least as well as Deal; x0 strictly
    // better (FreeRide territory: entering arc triggered, bridge withheld).
    for name in ["x0", "x1", "x2"] {
        let v = digraph.vertex_by_name(name).unwrap();
        let o = report.outcomes[v.index()];
        assert!(
            o == Outcome::Deal || o == Outcome::Discount || o == Outcome::FreeRide,
            "{name}: {o}"
        );
    }
    let x0_outcome = report.outcomes[x0.index()];
    assert_eq!(x0_outcome, Outcome::Discount, "x0 keeps the bridge asset: {x0_outcome}");
    // The conforming Y side is strictly worse than Deal but never
    // Underwater-by-deviation… y0 never sees the bridge contract, so the
    // whole Y ring stalls and refunds.
    for name in ["y0", "y1", "y2"] {
        let v = digraph.vertex_by_name(name).unwrap();
        assert_eq!(report.outcomes[v.index()], Outcome::NoDeal, "{name}");
    }
}

/// Theorem 4.12 / Lemma 4.11: if the leaders do not form a feedback vertex
/// set, Phase One deadlocks — the follower cycle waits forever and no arc
/// on it ever gets a contract.
#[test]
fn theorem_4_12_non_fvs_leaders_deadlock() {
    let digraph = generators::two_leader_triangle();
    let n = digraph.vertex_count();
    let mut rng = SimRng::from_seed(400);
    let keypairs: Vec<MssKeypair> =
        (0..n).map(|_| MssKeypair::from_seed_with_height(rng.bytes32(), 4)).collect();
    let secrets: Vec<Secret> = (0..n).map(|_| Secret::random(&mut rng)).collect();
    let alice = VertexId::new(0);
    let delta = Delta::from_ticks(10);
    // Claim only alice leads — but {alice} is NOT an FVS here.
    let spec = SwapSpec {
        leaders: vec![alice],
        hashlocks: vec![secrets[alice.index()].hashlock()],
        addresses: keypairs.iter().map(|k| k.public_key().address()).collect(),
        keys: keypairs.iter().map(|k| k.public_key()).collect(),
        start: SimTime::ZERO + delta.times(1),
        delta,
        diam: digraph.diameter() as u64,
        broadcast_arcs: false,
        digraph: digraph.clone(),
    };
    assert!(spec.validate().is_err());
    let setup = SwapSetup::from_parts(spec, keypairs, secrets, SimTime::ZERO);
    let report = SwapRunner::new(setup, RunConfig::default()).run();
    // The bob↔carol 2-cycle deadlocks: each waits for the other's contract.
    let bob = VertexId::new(1);
    let carol = VertexId::new(2);
    for arc in digraph.arcs() {
        let within_cycle =
            (arc.head == bob && arc.tail == carol) || (arc.head == carol && arc.tail == bob);
        if within_cycle {
            assert!(!report.arc_triggered[arc.id.index()], "arc {} should deadlock", arc.id);
        }
    }
    assert!(!report.all_deal());
    assert!(report.no_conforming_underwater());
}

/// Theorem 4.10: total contract storage grows quadratically with |A|
/// (each of the |A| contracts stores an O(|A|) digraph copy).
#[test]
fn theorem_4_10_quadratic_space() {
    let mut measured: Vec<(usize, usize)> = Vec::new();
    for n in [3usize, 4, 5, 6] {
        let digraph = generators::complete(n);
        let arcs = digraph.arc_count();
        let report = conforming_run(digraph, 500 + n as u64);
        measured.push((arcs, report.storage.contract_bytes));
    }
    // bytes / |A|² stays within a narrow constant band.
    let ratios: Vec<f64> = measured.iter().map(|&(a, b)| b as f64 / (a * a) as f64).collect();
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 4.0,
        "bytes/|A|² should be near-constant, got ratios {ratios:?} from {measured:?}"
    );
    // And it really is superlinear: doubling |A| should much more than
    // double the bytes.
    let (a0, b0) = measured[0];
    let (a3, b3) = measured[3];
    let arc_factor = a3 as f64 / a0 as f64;
    let byte_factor = b3 as f64 / b0 as f64;
    assert!(byte_factor > 1.5 * arc_factor, "{measured:?}");
}

/// The abstract's communication bound: conforming runs perform exactly
/// |A|·|L| unlock calls (each arc receives one hashkey per leader secret).
#[test]
fn communication_is_arcs_times_leaders() {
    let cases: Vec<Digraph> = vec![
        generators::herlihy_three_party(),
        generators::two_leader_triangle(),
        generators::cycle(5),
        generators::complete(4),
    ];
    for digraph in cases {
        let arcs = digraph.arc_count() as u64;
        let setup =
            SwapSetup::generate(digraph, &fast_config(), &mut SimRng::from_seed(2)).expect("valid");
        let leaders = setup.spec.leaders.len() as u64;
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        assert!(report.all_deal());
        assert_eq!(report.metrics.unlock_calls, arcs * leaders, "|A| = {arcs}, |L| = {leaders}");
    }
}

/// All chains stay internally consistent (hash links verify) after a full
/// protocol run, including adversarial ones.
#[test]
fn ledgers_remain_tamper_evident() {
    let digraph = generators::two_leader_triangle();
    let setup =
        SwapSetup::generate(digraph, &fast_config(), &mut SimRng::from_seed(3)).expect("valid");
    // Keep a handle by re-generating (the runner consumes the setup).
    let setup2 = SwapSetup::generate(
        generators::two_leader_triangle(),
        &fast_config(),
        &mut SimRng::from_seed(3),
    )
    .expect("valid");
    assert!(setup2.chains.verify_integrity());
    let mut config = RunConfig::default();
    config.behaviors.insert(VertexId::new(1), Behavior::Halt { at_round: 3 });
    let report = SwapRunner::new(setup, config).run();
    assert!(report.metrics.rounds > 0);
}

/// The broadcast optimization (§4.5) makes Phase Two constant-round: with
/// it enabled, the gap between the first and last trigger does not grow
/// with the cycle length.
#[test]
fn broadcast_optimization_shortens_phase_two() {
    let mut spans: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for n in [4usize, 6, 8] {
        for (label, broadcast) in [("plain", false), ("broadcast", true)] {
            let digraph = generators::cycle(n);
            let mut setup = SwapSetup::generate(digraph, &fast_config(), &mut SimRng::from_seed(4))
                .expect("valid");
            setup.spec.broadcast_arcs = broadcast;
            let report = SwapRunner::new(setup, RunConfig::default()).run();
            assert!(report.all_deal(), "{label} cycle({n})");
            let first = report.triggered_at.iter().filter_map(|&t| t).min().expect("triggers");
            let last = report.completion.expect("completes");
            spans.entry(label).or_default().push((last - first).ticks());
        }
    }
    let plain = &spans["plain"];
    let broadcast = &spans["broadcast"];
    // Phase Two span grows with n in the plain protocol…
    assert!(plain.windows(2).all(|w| w[1] > w[0]), "plain spans: {plain:?}");
    // …but stays flat with the broadcast short-circuit.
    assert!(broadcast.iter().all(|&s| s == broadcast[0]), "broadcast spans: {broadcast:?}");
    assert!(broadcast[0] < *plain.last().unwrap());
}
