//! Offline stub of `criterion`.
//!
//! Mirrors the API surface the `swap-bench` suite uses — [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `iter`/`iter_batched` — with a plain
//! wall-clock measurement loop instead of criterion's statistical engine.
//! Each benchmark prints `group/id  median  (samples)` to stdout. The
//! stub honors `--bench` (ignored filter args) so `cargo bench` and
//! `cargo bench --no-run` behave as expected.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
            filter: None,
            quick: false,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark warm-up time.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets how many timed samples to collect per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Restricts runs to benchmarks whose id contains `filter`.
    #[must_use]
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Configures `self` from `cargo bench` command-line arguments
    /// (accepts and ignores harness flags; a bare argument is a filter).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        // Boolean flags the libtest/criterion harnesses pass or accept;
        // anything else starting with `-` is assumed to take the next
        // argument as its value, so that value is not mistaken for a
        // benchmark filter.
        const BOOLEAN_FLAGS: &[&str] = &[
            "--bench",
            "--test",
            "--exact",
            "--list",
            "--nocapture",
            "--quiet",
            "-q",
            "--verbose",
            "-v",
            "--quick",
        ];
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--quick" {
                // Mirror criterion's --quick: one sample, no warm-up —
                // smoke-level timing for CI regression gates.
                self.quick = true;
                self.warm_up = Duration::ZERO;
                self.measurement = Duration::from_millis(100);
            } else if arg.starts_with('-') {
                if !BOOLEAN_FLAGS.contains(&arg.as_str()) && !arg.contains('=') {
                    let _ = args.next();
                }
            } else {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let id = id.to_string();
        self.run_one(&id, self.sample_size, &mut f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, sample_size: usize, f: &mut F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let sample_size = if self.quick { 1 } else { sample_size };
        let mut bencher =
            Bencher { samples: Vec::new(), budget: self.measurement, warm_up: self.warm_up };
        for _ in 0..sample_size {
            f(&mut bencher);
        }
        bencher.report(id);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Records the throughput denominator (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, n, &mut f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, n, &mut |b| f(b, input));
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// An id distinguished by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Throughput denominator for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output to batch per timed run in
/// [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state; batch many.
    SmallInput,
    /// Large per-iteration state; batch few.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warm_up: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly and records one sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-iteration cost on the first sample.
        if self.samples.is_empty() && !self.warm_up.is_zero() {
            let end = Instant::now() + self.warm_up;
            while Instant::now() < end {
                black_box(routine());
            }
        }
        // The estimation run doubles as the sample when one iteration
        // already exceeds the per-sample budget (long routines: one run
        // per sample instead of two).
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(20));
        let per_sample = self.budget / 20;
        if one >= per_sample {
            self.samples.push(one);
            return;
        }
        let iters = ((per_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000)) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iters);
    }

    /// Times `routine` over fresh `setup` output, excluding setup time from
    /// the measurement (coarsely — setup runs outside the timed region).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = 8u32;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / iters);
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        println!("{id:<48} median {median:>12.2?}  ({} samples)", self.samples.len());
        self.samples.clear();
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs this file's benchmarks with the configured [`Criterion`].
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs = black_box(runs + 1)));
        assert!(runs > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Bytes(64));
        group
            .bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| black_box(x * 2)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .with_filter("nope");
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs = black_box(runs + 1)));
        assert_eq!(runs, 0);
    }
}
