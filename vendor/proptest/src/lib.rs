//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! suites use — the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, [`arbitrary::any`],
//! `prop::collection::vec`, [`prop_oneof!`], the `prop_assert*` family,
//! [`prop_assume!`], and [`test_runner::ProptestConfig`] — on top of a
//! deterministic seeded RNG, so test failures reproduce exactly.
//!
//! Differences from upstream, by design:
//!
//! - no shrinking: a failing case reports its inputs (via the assertion
//!   message) but is not minimized;
//! - the default case count is 64 (override per-suite with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//!   the `PROPTEST_CASES` environment variable);
//! - generation is seeded from the test function's name, so runs are fully
//!   deterministic from one invocation to the next.

#![forbid(unsafe_code)]

/// Test-case plumbing: configuration, RNG, and case-level error signalling.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-suite configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Deterministic generation source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Derives a generator from an arbitrary label (the test name), so
        /// every property gets an independent, reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in label.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { inner: StdRng::seed_from_u64(h) }
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            rand::Rng::gen_range(&mut self.inner, 0..bound)
        }

        /// Raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Access the underlying `rand` generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};
    use rand::SampleRange;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }

        /// Boxes this strategy as a trait object (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Uniform choice between boxed alternatives (see `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds a choice over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    // Mild bias toward the endpoints, where bugs live.
                    match rng.below(16) {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => self.clone().sample_single(rng.rng()),
                    }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    match rng.below(16) {
                        0 => *self.start(),
                        1 => *self.end(),
                        _ => self.clone().sample_single(rng.rng()),
                    }
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.clone().sample_single(rng.rng())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            self.clone().sample_single(rng.rng())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for any value of an [`Arbitrary`](crate::arbitrary::Arbitrary)
    /// type; built by [`any`](crate::arbitrary::any).
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The `Arbitrary` trait and the [`any`](arbitrary::any) entry point.
pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: PhantomData }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias toward the extremes upstream proptest also favors.
                    match rng.below(16) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => 1,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    match rng.below(16) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size.len()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines a block of property tests.
///
/// Each `fn name(binding in strategy, ...) { body }` item expands to a
/// `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            // Rejected cases (prop_assume!) are retried with fresh inputs
            // rather than counted, so `cases` bodies really execute; a
            // rejection-heavy precondition fails loudly instead of
            // silently passing a vacuous suite (mirrors upstream's
            // max_global_rejects).
            let max_rejects = 16 * config.cases + 1024;
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejects += 1;
                        if rejects > max_rejects {
                            panic!(
                                "prop_assume! rejected {rejects} inputs while only {case} of {} \
                                 cases ran; the precondition is too strict for its strategy",
                                config.cases
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {case}: {msg}");
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the harness can report which generated case broke it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // `{}` + concat! rather than passing the stringified condition as
        // the format string: conditions like `matches!(x, E { .. })`
        // contain braces that would otherwise be parsed as format specs.
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when its generated inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..4, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps(v in (0u8..5, 1u8..3).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 6);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_covers_options(pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn assume_rejects(n in 0u8..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!((0u64..1000).new_value(&mut a), (0u64..1000).new_value(&mut b));
        }
    }
}
