//! Offline stub of `rand` 0.8.
//!
//! The workspace pins all experiment randomness behind `swap_sim::SimRng`,
//! which only needs a seedable, deterministic core generator. This crate
//! supplies exactly that surface — [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`Error`] — with API-compatible signatures, so the
//! real `rand` can be dropped in later without touching callers.
//!
//! `StdRng` here is xoshiro256++ (public domain reference constants), which
//! is deterministic across platforms and plenty for simulation workloads.
//! It makes no attempt to match upstream `StdRng`'s byte streams.

#![forbid(unsafe_code)]

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Error type for fallible generator operations.
///
/// The stub generators are infallible; this exists only so signatures like
/// `try_fill_bytes` line up with the real crate.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer and byte output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A range that can be sampled uniformly, mirroring `rand::distributions`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw in `[0, bound)` without modulo bias (Lemire rejection).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the top zone to avoid modulo bias.
    let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v.wrapping_rem(bound);
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a 64-bit seed (SplitMix64, as in
    /// upstream `rand`'s `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut s = z;
            s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            s ^= s >> 31;
            for (b, sb) in chunk.iter_mut().zip(s.to_le_bytes()) {
                *b = sb;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++.
    ///
    /// Unlike upstream `StdRng` this is *guaranteed* reproducible across
    /// versions of this stub — the experiment harness depends on that.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
