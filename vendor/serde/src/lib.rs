//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! derive-macro namespaces so that `use serde::{Deserialize, Serialize};`
//! followed by `#[derive(Serialize, Deserialize)]` compiles unchanged. The
//! derives expand to nothing (see `serde_derive`); the traits exist only so
//! future code can write bounds against them without touching call sites.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
