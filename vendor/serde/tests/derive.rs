//! The no-op derives must still satisfy marker-trait bounds, so future
//! code can write `T: Serialize` against derived types.

use serde::{Deserialize, Serialize};

// The fields only exist to exercise the derive; nothing reads them.
#[derive(Serialize, Deserialize)]
struct Plain {
    #[serde(default)]
    #[allow(dead_code)]
    field: u32,
}

#[derive(Serialize, Deserialize)]
#[allow(dead_code)]
enum Either {
    Left(u8),
    Right { value: String },
}

#[derive(Serialize, Deserialize)]
pub(crate) struct WithVisibility;

fn requires_serialize<T: Serialize>(_: &T) {}
fn requires_deserialize<T: for<'de> Deserialize<'de>>(_: &T) {}

#[test]
fn derived_types_satisfy_bounds() {
    let p = Plain { field: 1 };
    requires_serialize(&p);
    requires_deserialize(&p);
    let e = Either::Right { value: String::new() };
    requires_serialize(&e);
    let _ = Either::Left(0);
    requires_serialize(&WithVisibility);
    requires_deserialize(&WithVisibility);
}
