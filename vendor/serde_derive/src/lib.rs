//! Offline stub of `serde_derive`.
//!
//! The workspace builds in a hermetic environment with no access to
//! crates.io, and nothing in the tree actually serializes anything yet —
//! `#[derive(Serialize, Deserialize)]` is carried on types for forward
//! compatibility. These derives accept the same syntax (including
//! `#[serde(...)]` helper attributes) and emit an implementation of the
//! matching marker trait from the stub `serde` crate, so bounds like
//! `T: serde::Serialize` hold for derived types.
//!
//! Limitation (documented in `vendor/README.md`): generic types get no
//! impl — deriving the correct bounded impl needs real `syn`, and no
//! in-tree deriver is generic. Deriving on a generic type compiles but
//! will not satisfy a `Serialize` bound until the real serde replaces
//! this stub.

use proc_macro::{TokenStream, TokenTree};

/// The identifier the derive applies to: the first ident following the
/// `struct`/`enum`/`union` keyword, or `None` if the type has generics.
fn plain_type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = &tree {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // A `<` right after the name means generic parameters.
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

/// Stand-in for `serde_derive::Serialize`: emits a marker-trait impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match plain_type_name(input) {
        Some(name) => {
            format!("impl ::serde::Serialize for {name} {{}}").parse().expect("valid impl block")
        }
        None => TokenStream::new(),
    }
}

/// Stand-in for `serde_derive::Deserialize`: emits a marker-trait impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match plain_type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("valid impl block"),
        None => TokenStream::new(),
    }
}
